package omp

import (
	"strings"
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/places"
	"github.com/interweaving/komp/internal/sim"
)

// TestNestedLevels pins the nesting introspection API two levels deep:
// Level / ActiveLevel / AncestorThreadNum / TeamSize, and that an inner
// region really forks a team (all inner thread numbers execute).
func TestNestedLevels(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true, MaxActiveLevels: 2},
		func(rt *Runtime, tc exec.TC) {
			var innerRan atomic.Int64
			var badLevel atomic.Int64
			rt.Parallel(tc, 2, func(ow *Worker) {
				if ow.Level() != 1 || ow.ActiveLevel() != 1 {
					badLevel.Add(1)
				}
				outerID := ow.ThreadNum()
				ow.Parallel(3, func(iw *Worker) {
					innerRan.Add(1)
					if iw.Level() != 2 || iw.ActiveLevel() != 2 {
						badLevel.Add(1)
					}
					if iw.NumThreads() != 3 {
						t.Errorf("inner NumThreads = %d, want 3", iw.NumThreads())
					}
					if got := iw.AncestorThreadNum(1); got != outerID {
						t.Errorf("AncestorThreadNum(1) = %d, want %d", got, outerID)
					}
					if got := iw.AncestorThreadNum(2); got != iw.ThreadNum() {
						t.Errorf("AncestorThreadNum(2) = %d, want %d", got, iw.ThreadNum())
					}
					if got := iw.AncestorThreadNum(0); got != 0 {
						t.Errorf("AncestorThreadNum(0) = %d, want 0", got)
					}
					if got := iw.AncestorThreadNum(3); got != -1 {
						t.Errorf("AncestorThreadNum(3) = %d, want -1", got)
					}
					if got := iw.TeamSize(1); got != 2 {
						t.Errorf("TeamSize(1) = %d, want 2", got)
					}
					if got := iw.TeamSize(2); got != 3 {
						t.Errorf("TeamSize(2) = %d, want 3", got)
					}
					if got := iw.TeamSize(0); got != 1 {
						t.Errorf("TeamSize(0) = %d, want 1", got)
					}
				})
			})
			if innerRan.Load() != 6 {
				t.Errorf("inner bodies ran %d times, want 6 (2 outer x 3 inner)", innerRan.Load())
			}
			if badLevel.Load() != 0 {
				t.Errorf("%d workers saw wrong Level/ActiveLevel", badLevel.Load())
			}
		})
}

// TestInParallelActiveLevels pins the omp_in_parallel fix: a top-level
// serialized region is NOT in parallel; a serialized inner region under
// an active outer one IS.
func TestInParallelActiveLevels(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		rt.Parallel(tc, 1, func(w *Worker) {
			if w.InParallel() {
				t.Error("top-level serialized region: InParallel() = true, want false")
			}
			if w.Level() != 1 || w.ActiveLevel() != 0 {
				t.Errorf("serialized region Level/ActiveLevel = %d/%d, want 1/0",
					w.Level(), w.ActiveLevel())
			}
		})
		rt.Parallel(tc, 4, func(ow *Worker) {
			if !ow.InParallel() {
				t.Error("active region: InParallel() = false, want true")
			}
			// MaxActiveLevels defaults to 1: the inner region serializes,
			// but it is still nested inside an active region.
			ow.Parallel(4, func(iw *Worker) {
				if iw.NumThreads() != 1 {
					t.Errorf("inner NumThreads = %d, want 1 (serialized at the cap)", iw.NumThreads())
				}
				if !iw.InParallel() {
					t.Error("serialized inner region under active outer: InParallel() = false, want true")
				}
				if iw.Level() != 2 || iw.ActiveLevel() != 1 {
					t.Errorf("inner Level/ActiveLevel = %d/%d, want 2/1", iw.Level(), iw.ActiveLevel())
				}
			})
		})
	})
}

// TestNumThreadsList pins the comma-list OMP_NUM_THREADS ICV: entry i
// sizes level i+1, the last entry covering deeper levels.
func TestNumThreadsList(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true, MaxActiveLevels: 3,
		NumThreadsList: []int{4, 2}, DefaultThreads: 4},
		func(rt *Runtime, tc exec.TC) {
			rt.Parallel(tc, 0, func(ow *Worker) {
				if ow.NumThreads() != 4 {
					t.Errorf("level-1 NumThreads = %d, want 4", ow.NumThreads())
				}
				if ow.ThreadNum() != 0 {
					return // one forker is enough: keep the lease demand bounded
				}
				ow.Parallel(0, func(iw *Worker) {
					if iw.NumThreads() != 2 {
						t.Errorf("level-2 NumThreads = %d, want 2", iw.NumThreads())
					}
					if iw.ThreadNum() != 0 {
						return
					}
					iw.Parallel(0, func(dw *Worker) {
						// Past the end of the list: the last entry applies.
						if dw.NumThreads() != 2 {
							t.Errorf("level-3 NumThreads = %d, want 2", dw.NumThreads())
						}
					})
				})
			})
		})
}

// TestLeaseShortfall: when the pool cannot satisfy every inner fork, the
// inner teams shrink (down to 1) instead of deadlocking or
// oversubscribing, and every requested body still runs.
func TestLeaseShortfall(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 4, Bind: true, MaxActiveLevels: 2},
		func(rt *Runtime, tc exec.TC) {
			// Outer team of 4 leases the whole pool (3 workers): nothing
			// is left, so every inner region collapses to a team of 1.
			var innerSizes atomic.Int64
			rt.Parallel(tc, 4, func(ow *Worker) {
				ow.Parallel(4, func(iw *Worker) {
					if iw.ThreadNum() == 0 {
						innerSizes.Add(int64(iw.NumThreads()))
					}
				})
			})
			if innerSizes.Load() != 4 {
				t.Errorf("sum of inner team sizes = %d, want 4 (all collapsed to 1)", innerSizes.Load())
			}
		})
}

// TestInnerCancelScoped pins the cancellation scoping contract: a cancel
// issued inside an inner team cancels that team only — the outer team's
// cancel word stays zero and the outer region runs to completion.
func TestInnerCancelScoped(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true, MaxActiveLevels: 2, Cancellation: true},
		func(rt *Runtime, tc exec.TC) {
			var outerFlags atomic.Int64
			var outerFinished atomic.Int64
			rt.Parallel(tc, 2, func(ow *Worker) {
				if ow.ThreadNum() == 0 {
					ow.Parallel(3, func(iw *Worker) {
						if iw.ThreadNum() == 0 {
							if !iw.Cancel(CancelParallel) {
								t.Error("inner Cancel(parallel) returned false with the ICV on")
							}
							return
						}
						for !iw.CancellationPoint(CancelParallel) {
							iw.tc.Yield()
						}
					})
				}
				// The outer region must be unaffected: its cancel word is
				// clean and its barrier still converges.
				outerFlags.Add(int64(ow.team.cancelFlags.Load()))
				ow.Barrier()
				outerFinished.Add(1)
			})
			if outerFlags.Load() != 0 {
				t.Errorf("outer team cancel bits = %d after inner cancel, want 0", outerFlags.Load())
			}
			if outerFinished.Load() != 2 {
				t.Errorf("outer region finished on %d threads, want 2", outerFinished.Load())
			}
		})
}

// TestOuterCancelReachesInner: cancelling the outer region cancels teams
// forked inside it — inner cancellation points observe the outer cancel
// and the whole hierarchy converges at its joins.
func TestOuterCancelReachesInner(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true, MaxActiveLevels: 2, Cancellation: true},
		func(rt *Runtime, tc exec.TC) {
			var innerStarted exec.Word
			var innerSawCancel atomic.Int64
			rt.Parallel(tc, 2, func(ow *Worker) {
				if ow.ThreadNum() == 0 {
					ow.Parallel(3, func(iw *Worker) {
						innerStarted.Store(1)
						for !iw.CancellationPoint(CancelParallel) {
							iw.tc.Yield()
						}
						innerSawCancel.Add(1)
					})
					return
				}
				for innerStarted.Load() == 0 {
					ow.tc.Yield()
				}
				if !ow.Cancel(CancelParallel) {
					t.Error("outer Cancel(parallel) returned false with the ICV on")
				}
			})
			if innerSawCancel.Load() != 3 {
				t.Errorf("%d inner workers observed the outer cancel, want 3", innerSawCancel.Load())
			}
		})
}

// TestShrinkNestedInner: taking a CPU offline that belongs to an inner
// team's leased worker shrinks the inner team only; the outer team stays
// whole and both regions complete.
func TestShrinkNestedInner(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true, MaxActiveLevels: 2, Resilient: true},
		func(rt *Runtime, tc exec.TC) {
			var innerAlive, outerAlive atomic.Int64
			rt.Parallel(tc, 2, func(ow *Worker) {
				if ow.ThreadNum() == 0 {
					// Outer leases pool worker 1; the inner fork leases
					// workers 2,3,4 (lowest free ids), bound to CPUs 2,3,4
					// under the close pool placement.
					ow.Parallel(4, func(iw *Worker) {
						if iw.ThreadNum() == 0 {
							rt.OfflineCPU(3)
						}
						iw.Barrier() // safe point: the doomed worker leaves here
						if iw.ThreadNum() == 0 {
							innerAlive.Store(int64(iw.NumAlive()))
						}
					})
				}
				ow.Barrier()
				if ow.ThreadNum() == 0 {
					outerAlive.Store(int64(ow.NumAlive()))
				}
			})
			if innerAlive.Load() != 3 {
				t.Errorf("inner NumAlive = %d after offlining an inner CPU, want 3", innerAlive.Load())
			}
			if outerAlive.Load() != 2 {
				t.Errorf("outer NumAlive = %d, want 2 (outer team must not shrink)", outerAlive.Load())
			}
		})
}

// TestShrinkDoomedOuterMasterDrainsInner: dooming an outer worker while
// it is the master of an inner team must not kill the inner region —
// the inner team completes and joins first; the worker dies at its next
// outer safe point.
func TestShrinkDoomedOuterMasterDrainsInner(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true, MaxActiveLevels: 2, Resilient: true},
		func(rt *Runtime, tc exec.TC) {
			var innerBodies atomic.Int64
			var outerAliveAfter atomic.Int64
			rt.Parallel(tc, 2, func(ow *Worker) {
				if ow.ThreadNum() == 1 {
					// Worker 1 sits on CPU 1 (close pool placement). Doom
					// it mid-inner-region: the inner team must still run
					// both bodies and a barrier before the death lands.
					ow.Parallel(2, func(iw *Worker) {
						if iw.ThreadNum() == 0 {
							rt.OfflineCPU(1)
						}
						iw.Barrier()
						innerBodies.Add(1)
					})
				}
				ow.Barrier() // outer safe point: worker 1 dies here
				outerAliveAfter.Store(int64(ow.NumAlive()))
			})
			if innerBodies.Load() != 2 {
				t.Errorf("inner bodies after dooming the inner master = %d, want 2", innerBodies.Load())
			}
			if outerAliveAfter.Load() != 1 {
				t.Errorf("outer NumAlive = %d after the doomed worker left, want 1", outerAliveAfter.Load())
			}
		})
}

// TestPerLevelProcBind is the regression test for the per-level
// OMP_PROC_BIND list: an inner team binds by its own level's policy,
// subpartitioning the master's place — under the default one-place-per-
// core partition every inner worker lands on its master's CPU.
func TestPerLevelProcBind(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true, MaxActiveLevels: 2,
		ProcBind:     places.BindSpread,
		ProcBindList: []places.Bind{places.BindSpread, places.BindClose}},
		func(rt *Runtime, tc exec.TC) {
			var misplaced atomic.Int64
			rt.Parallel(tc, 2, func(ow *Worker) {
				masterCPU := ow.tc.CPU()
				ow.Parallel(2, func(iw *Worker) {
					if iw.tc.CPU() != masterCPU {
						misplaced.Add(1)
					}
				})
			})
			if misplaced.Load() != 0 {
				t.Errorf("%d inner workers left their master's place", misplaced.Load())
			}
		})
}

// TestNestedPoolReturn exercises the KOMP_NESTED_POOL=return lease
// policy: the lease goes back at every inner join, so repeated inner
// regions keep working (reconstructed each time) and sibling forks can
// share pool workers over time.
func TestNestedPoolReturn(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true, MaxActiveLevels: 2,
		NestedPool: NestedPoolReturn},
		func(rt *Runtime, tc exec.TC) {
			var innerBodies atomic.Int64
			rt.Parallel(tc, 2, func(ow *Worker) {
				for r := 0; r < 3; r++ {
					ow.Parallel(2, func(iw *Worker) {
						innerBodies.Add(1)
					})
					ow.Barrier()
				}
			})
			if innerBodies.Load() != 12 {
				t.Errorf("inner bodies = %d, want 12", innerBodies.Load())
			}
		})
}

// TestNonNestedForkZeroAlloc asserts the hard acceptance criterion: the
// non-nested repeated-region fork/barrier fast path allocates nothing.
// Run on the simulator layer (the real layer's FutexWait allocates a
// park channel by design); a warm-up loop first saturates the hot team
// and the simulator's amortized wait-queue capacities.
func TestNonNestedForkZeroAlloc(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(8, 7), simCosts())
	rt := New(layer, Options{MaxThreads: 8, Bind: true})
	var avg float64
	_, err := layer.Run(func(tc exec.TC) {
		body := func(w *Worker) { w.Barrier() }
		for i := 0; i < 100; i++ {
			rt.Parallel(tc, 8, body)
		}
		avg = testing.AllocsPerRun(50, func() {
			rt.Parallel(tc, 8, body)
		})
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Errorf("non-nested fork/barrier allocates %.2f objects per region, want 0", avg)
	}
}

// TestEnvNestedICVs covers the environment surface of the nesting ICVs,
// including the parse-time warning for a per-level OMP_PROC_BIND list
// that OMP_MAX_ACTIVE_LEVELS makes unreachable.
func TestEnvNestedICVs(t *testing.T) {
	env := func(kv map[string]string) func(string) (string, bool) {
		return func(k string) (string, bool) { v, ok := kv[k]; return v, ok }
	}
	var o Options
	if err := o.Env(env(map[string]string{
		"OMP_NUM_THREADS":       "8,4",
		"OMP_MAX_ACTIVE_LEVELS": "2",
		"KOMP_NESTED_POOL":      "return",
	})); err != nil {
		t.Fatal(err)
	}
	if o.DefaultThreads != 8 || len(o.NumThreadsList) != 2 || o.NumThreadsList[1] != 4 {
		t.Errorf("OMP_NUM_THREADS list parsed as %d / %v", o.DefaultThreads, o.NumThreadsList)
	}
	if o.MaxActiveLevels != 2 {
		t.Errorf("MaxActiveLevels = %d, want 2", o.MaxActiveLevels)
	}
	if o.NestedPool != NestedPoolReturn {
		t.Errorf("NestedPool = %v, want return", o.NestedPool)
	}

	o = Options{}
	if err := o.Env(env(map[string]string{"OMP_PROC_BIND": "spread,close"})); err != nil {
		t.Fatal(err)
	}
	if len(o.ProcBindList) != 2 || o.ProcBind != places.BindSpread {
		t.Errorf("OMP_PROC_BIND list parsed as %v / %v", o.ProcBind, o.ProcBindList)
	}
	if len(o.Warnings) != 1 || !strings.Contains(o.Warnings[0], "never apply") {
		t.Errorf("expected one unreachable-bind-levels warning, got %q", o.Warnings)
	}

	o = Options{}
	if err := o.Env(env(map[string]string{
		"OMP_PROC_BIND":         "spread,close",
		"OMP_MAX_ACTIVE_LEVELS": "2",
	})); err != nil {
		t.Fatal(err)
	}
	if len(o.Warnings) != 0 {
		t.Errorf("unexpected warnings with a deep enough level cap: %q", o.Warnings)
	}

	for _, bad := range []map[string]string{
		{"OMP_NUM_THREADS": "8,0"},
		{"OMP_NUM_THREADS": "8,x"},
		{"OMP_MAX_ACTIVE_LEVELS": "0"},
		{"KOMP_NESTED_POOL": "bogus"},
	} {
		o = Options{}
		if err := o.Env(env(bad)); err == nil {
			t.Errorf("Env(%v): expected an error", bad)
		}
	}
}
