package omp

import (
	"sync"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
)

// task is an explicit OpenMP task.
type task struct {
	fn       func(*Worker)
	parent   *task
	children exec.Word
	waiting  exec.Word // parent is blocked in taskwait
	team     *Team
	id       uint64 // spine task id (0 for implicit tasks)

	// group is the taskgroup the task belongs to (nil outside any);
	// inherited from the encountering thread's current group.
	group *taskgroup
	// final marks a final task: it and every descendant execute
	// undeferred (included tasks).
	final bool
	// undeferred marks a task the encountering thread runs inline
	// (if(false) or final). When such a task is held on dependences the
	// encountering thread waits in waitDeps; the releasing predecessor
	// must wake that waiter instead of queueing the task.
	undeferred bool

	// Dependence state. deps is the address → last-accessor map this
	// task's *children* resolve their depend clauses against; npred is
	// this task's own count of unfinished predecessors; succs/depDone
	// (under depMu) are the successors waiting on this task.
	deps    *depTracker
	npred   exec.Word
	depMu   sync.Mutex
	depDone bool
	succs   []*task
}

// currentTask returns the task whose body the worker is executing (the
// implicit task when outside any explicit task).
func (w *Worker) currentTask() *task {
	if w.curTask == nil {
		// Lazily create the implicit task of this thread.
		w.curTask = &task{team: w.team}
	}
	return w.curTask
}

// taskCreateNS is the allocation + descriptor setup cost of one explicit
// task beyond the malloc itself.
const taskCreateNS = 55

// taskDispatchNS is the dequeue-and-invoke cost.
const taskDispatchNS = 40

// TaskOpt carries the clauses of a task construct.
type TaskOpt struct {
	// Depend lists the task's depend clauses; the task runs only after
	// every sibling predecessor named by the clauses has finished.
	Depend []Dep
	// Final marks the task final (final clause with a true expression):
	// it and all tasks it creates execute undeferred.
	Final bool
	// Undeferred executes the task immediately on the encountering
	// thread (the if clause with a false expression). A task with
	// unfinished predecessors is still held until they complete.
	Undeferred bool
}

// Task creates an explicit task (#pragma omp task). The task may execute
// on any thread of the team, at task scheduling points (barriers,
// taskwait, task creation under load).
func (w *Worker) Task(fn func(*Worker)) {
	w.TaskWith(TaskOpt{}, fn)
}

// TaskIf creates a task when cond is true, otherwise executes fn
// immediately (the if clause of #pragma omp task; EPCC CONDITIONAL_TASK
// measures exactly this with cond false). Both paths run the same
// completion accounting, so TasksRun and the OMPT stream see deferred
// and undeferred tasks symmetrically.
func (w *Worker) TaskIf(cond bool, fn func(*Worker)) {
	w.TaskWith(TaskOpt{Undeferred: !cond}, fn)
}

// TaskWith creates an explicit task with clauses. Every task — deferred,
// undeferred, final, throttled by the cutoff — flows through the same
// creation and completion accounting; only where the body runs differs.
func (w *Worker) TaskWith(opt TaskOpt, fn func(*Worker)) {
	tc := w.tc
	c := tc.Costs()
	parent := w.currentTask()
	final := opt.Final || parent.final
	undeferred := opt.Undeferred || final
	if undeferred {
		// Undeferred: the descriptor lives on the encountering thread's
		// stack — no malloc, no deque traffic.
		tc.Charge(taskCreateNS)
	} else {
		tc.Charge(c.MallocNS + taskCreateNS)
	}
	t := &task{fn: fn, parent: parent, team: w.team, final: final,
		undeferred: undeferred, group: w.curGroup, id: w.team.rt.taskSeq.Add(1)}
	w.emitTask(ompt.TaskCreate, t.id, 0)
	parent.children.Add(1)
	w.team.pending.Add(1)
	if g := t.group; g != nil {
		g.count.Add(1)
	}
	if len(opt.Depend) > 0 {
		// Seed one phantom predecessor so the task cannot be released
		// (by a predecessor finishing mid-registration) before the edge
		// set is complete.
		t.npred.Store(1)
		w.registerDeps(t, opt.Depend)
		if t.npred.Add(^uint32(0)) != 0 {
			if !undeferred {
				// Held: the last predecessor's completion queues it.
				return
			}
			// An undeferred task must complete before the encountering
			// thread passes the construct: wait out the predecessors
			// (helping with ready tasks), then fall through to run the
			// body inline.
			w.waitDeps(t)
		}
	}
	if !undeferred && w.cutoffHit() {
		undeferred = true
		w.team.rt.TaskCutoffs.Add(1)
	}
	if undeferred {
		w.runTaskBody(t)
		w.finishTask(t)
		return
	}
	w.deque.push(tc, t)
	w.wakeThief()
}

// wakeThief recruits one teammate parked at a barrier when a task
// becomes ready: the woken waiter re-checks the barrier generation,
// finds the pool non-empty, and steals instead of going back to sleep.
func (w *Worker) wakeThief() {
	t := w.team
	if t.parkedSleepers() > 0 {
		w.tc.FutexWake(&t.barGen, 1)
		if t.cancellable {
			// Sleepers of a cancellable region may be parked at the
			// dedicated join barrier instead (cancel.go).
			w.tc.FutexWake(&t.joinGen, 1)
		}
	}
}

// waitDeps blocks the encountering thread until t's predecessors have
// all finished (npred drained to zero), executing ready tasks while it
// waits. Used for undeferred tasks held on dependences: the thread may
// not proceed past the construct, so it helps until t becomes runnable
// and then runs the body itself.
func (w *Worker) waitDeps(t *task) {
	for {
		n := t.npred.Load()
		if n == 0 {
			return
		}
		if w.runOneTask() {
			continue
		}
		w.tc.FutexWait(&t.npred, n)
	}
}

// cutoffHit reports whether the cutoff throttle should serialize the
// next task: the worker's own deque already holds TaskCutoff ready
// tasks, so deferring more only grows queues (0 disables the throttle).
func (w *Worker) cutoffHit() bool {
	cut := w.team.rt.opts.TaskCutoff
	return cut > 0 && w.deque.size() >= cut
}

// runTaskBody executes t on this worker, maintaining the current-task
// and current-taskgroup chains: tasks a body creates become children of
// t and members of t's group, wherever the body was stolen to. The
// restore is deferred so a panic unwinding out of the body (to a recover
// in the region) cannot leave the worker parenting new tasks under a
// dead task or group; completion accounting is still skipped on panic.
func (w *Worker) runTaskBody(t *task) {
	if t.team.cancellable {
		if w.taskCancelled(t) {
			// Discarded: the body never runs, but the caller still runs
			// finishTask, so dependence release (releaseSuccs), parent,
			// taskgroup and team accounting all fire exactly once —
			// cancelled tasks are drained, not dropped. Cancellation is
			// judged against the task's own team: a cross-team thief must
			// not discard a live inner team's task because its own region
			// was cancelled (or vice versa).
			kind := CancelTaskgroup
			if t.team.parCancelled() {
				kind = CancelParallel
			}
			w.emitCancel(kind, t.id, cancelDiscardedTask)
			return
		}
		if t.group != nil {
			w.runTaskBodyCaught(t)
			return
		}
	}
	prevT, prevG := w.curTask, w.curGroup
	w.curTask, w.curGroup = t, t.group
	defer func() { w.curTask, w.curGroup = prevT, prevG }()
	w.emitTask(ompt.TaskSchedule, t.id, 0)
	t.fn(w)
	w.emitTask(ompt.TaskComplete, t.id, 0)
}

// runTaskBodyCaught runs a taskgroup member's body with panic
// containment (cancellation ICV on): a panic cancels the group —
// discarding its not-yet-started members — and is recorded for re-raise
// at the end of the taskgroup construct, instead of unwinding through
// whichever pool worker happened to steal the task and aborting the
// process. The recover runs after the current-task restore but before
// the caller's finishTask, so completion accounting stays exactly-once
// and the end-of-group wait converges. CPU-offline unwinds
// (offlineSignal) are re-raised — they must reach the worker loop.
func (w *Worker) runTaskBodyCaught(t *task) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(offlineSignal); ok {
				panic(r)
			}
			t.group.recordPanic(r)
			w.cancelGroup(t.group)
		}
	}()
	prevT, prevG := w.curTask, w.curGroup
	w.curTask, w.curGroup = t, t.group
	defer func() { w.curTask, w.curGroup = prevT, prevG }()
	w.emitTask(ompt.TaskSchedule, t.id, 0)
	t.fn(w)
	w.emitTask(ompt.TaskComplete, t.id, 0)
}

// finishTask propagates completion: dependent successors are released
// first (so they are findable before any waiter is woken), then the
// parent, the taskgroup, and the team are notified.
func (w *Worker) finishTask(t *task) {
	w.releaseDeps(t)
	if p := t.parent; p != nil {
		p.children.Add(^uint32(0))
		if p.waiting.Load() == 1 {
			w.tc.FutexWake(&p.children, -1)
		}
	}
	if g := t.group; g != nil {
		if g.count.Add(^uint32(0)) == 0 && g.waiting.Load() == 1 {
			w.tc.FutexWake(&g.count, -1)
		}
	}
	// The task's own team is credited — a cross-team thief must drain
	// the victim team's pending count, not its own.
	t.team.pending.Add(^uint32(0))
	t.team.rt.TasksRun.Add(1)
}

// runOneTask executes one ready task: own deque first (bottom), then
// steals from teammates (top). Placed teams sweep victims nearest-first
// (stealNearest); unplaced teams — and KOMP_STEAL_ORDER=rr — probe at
// most TaskStealTries victims round-robin, with the start point rotating
// even when the sweep fails so retries do not rescan the same victims in
// the same order. It reports whether a task ran.
func (w *Worker) runOneTask() bool {
	tc := w.tc
	if t := w.deque.pop(tc); t != nil {
		tc.Charge(taskDispatchNS)
		w.runTaskBody(t)
		w.finishTask(t)
		return true
	}
	if w.team.rt.stealNear(w.team.cpus) {
		if w.stealNearest() {
			return true
		}
	} else {
		n := w.team.n
		tries := w.team.rt.opts.TaskStealTries
		if tries <= 0 || tries > n-1 {
			tries = n - 1
		}
		start := w.stealRR
		for k := 1; k <= tries; k++ {
			victim := w.team.workers[(w.id+start+k)%n]
			if victim == nil || victim == w {
				continue
			}
			if t := victim.deque.steal(tc); t != nil {
				w.stealRR = (start + k) % n
				w.finishSteal(tc, victim, t)
				return true
			}
		}
		w.stealRR = (start + 1) % n
	}
	// The own team is dry. Once teams nest, help across team boundaries
	// — enclosing team first, then sibling sub-teams; a flat team pays
	// one nil check and one load to skip this.
	if w.team.parent == nil && w.team.subActive.Load() == 0 {
		return false
	}
	return w.stealCrossTeam()
}

// sweepTeam probes every worker of team vt (skipping this worker) for a
// stealable task. Cross-team sweeps are the cold path — entered only
// when the thief's own team is dry — so a flat front-to-back probe
// suffices; the vt.pending gate keeps a sweep of an idle team to one
// shared-counter load.
func (w *Worker) sweepTeam(vt *Team) bool {
	if vt == nil || vt.pending.Load() == 0 {
		return false
	}
	for _, victim := range vt.workers {
		if victim == nil || victim == w {
			continue
		}
		if t := victim.deque.steal(w.tc); t != nil {
			w.finishSteal(w.tc, victim, t)
			return true
		}
	}
	return false
}

// stealCrossTeam is the nested-team help path, preferring the enclosing
// hierarchy near-to-far: first down into teammates' active sub-teams,
// then up the ancestor chain — each ancestor's own deques, then sibling
// sub-teams hanging off that ancestor's other workers (the chain this
// worker came from is skipped; its work was already swept).
func (w *Worker) stealCrossTeam() bool {
	t := w.team
	if t.subActive.Load() != 0 {
		for _, tw := range t.workers {
			if st := tw.sub.Load(); st != nil && w.sweepTeam(st) {
				return true
			}
		}
	}
	child := t
	for p := t.parent; p != nil; p = p.parent {
		if w.sweepTeam(p) {
			return true
		}
		if p.subActive.Load() != 0 {
			for _, pw := range p.workers {
				st := pw.sub.Load()
				if st == nil || st == child {
					continue
				}
				if w.sweepTeam(st) {
					return true
				}
			}
		}
		child = p
	}
	return false
}

// pendingWork reports whether a waiter could find a task to help with:
// in the own team's pool, an enclosing team's, or a teammate's active
// sub-team's. It gates the help-vs-sleep decision in barrier and join
// wait loops ONLY — completion and drain conditions always use the own
// pending count, or an outer barrier would block on inner-team work it
// does not own. For a flat team it is one load plus one nil check.
func (t *Team) pendingWork() bool {
	if t.pending.Load() > 0 {
		return true
	}
	if t.parent == nil && t.subActive.Load() == 0 {
		return false
	}
	for p := t.parent; p != nil; p = p.parent {
		if p.pending.Load() > 0 {
			return true
		}
	}
	if t.subActive.Load() != 0 {
		for _, tw := range t.workers {
			if st := tw.sub.Load(); st != nil && st.pending.Load() > 0 {
				return true
			}
		}
	}
	return false
}

// stealNearest sweeps victims in NUMA order: the same-place ring, then
// the same-socket ring, then remote victims by increasing distance —
// rotating within each ring independently, so repeated sweeps spread
// load across equally-near victims before ever going remote. The
// TaskStealTries budget bounds total probes, spent near-to-far.
func (w *Worker) stealNearest() bool {
	if w.stealOrder == nil {
		w.stealOrder, w.stealRings = w.team.rt.opts.Places.StealOrder(w.id, w.team.cpus)
	}
	order := w.stealOrder
	tc := w.tc
	tries := w.team.rt.opts.TaskStealTries
	if tries <= 0 || tries > len(order) {
		tries = len(order)
	}
	probed, lo := 0, 0
	for r := 0; r < 3 && probed < tries; r++ {
		hi := len(order)
		if r < 2 {
			hi = w.stealRings[r]
		}
		size := hi - lo
		if size <= 0 {
			lo = hi
			continue
		}
		cur := w.stealCur[r] % size
		for k := 0; k < size && probed < tries; k++ {
			victim := w.team.workers[order[lo+(cur+k)%size]]
			probed++
			if t := victim.deque.steal(tc); t != nil {
				// The next sweep starts at this victim again: it had work.
				w.stealCur[r] = (cur + k) % size
				w.finishSteal(tc, victim, t)
				return true
			}
		}
		w.stealCur[r] = (cur + 1) % size
		lo = hi
	}
	return false
}

// finishSteal accounts for and runs a stolen task, splitting the steal
// counter by thief/victim socket locality when the team is placed.
func (w *Worker) finishSteal(tc exec.TC, victim *Worker, t *task) {
	tc.Charge(taskDispatchNS)
	rt := w.team.rt
	rt.TaskSteals.Add(1)
	// The victim may sit in another team (cross-team help): its CPU
	// comes from its own team's placement, not the thief's.
	if cpus, vcpus := w.team.cpus, victim.team.cpus; cpus != nil && vcpus != nil {
		p := rt.opts.Places
		if p.SocketOf(cpus[w.id]) == p.SocketOf(vcpus[victim.id]) {
			rt.LocalSteals.Add(1)
		} else {
			rt.RemoteSteals.Add(1)
		}
	}
	w.emitTask(ompt.TaskSteal, t.id, int64(victim.id))
	w.runTaskBody(t)
	w.finishTask(t)
}

// Taskwait blocks until all child tasks of the current task complete,
// executing available tasks while it waits (#pragma omp taskwait).
func (w *Worker) Taskwait() {
	cur := w.currentTask()
	tc := w.tc
	w.emitSync(ompt.SyncAcquire, ompt.SyncTaskwait, cur.id)
	for {
		n := cur.children.Load()
		if n == 0 {
			break
		}
		if w.runOneTask() {
			continue
		}
		cur.waiting.Store(1)
		tc.FutexWait(&cur.children, n)
		cur.waiting.Store(0)
	}
	w.emitSync(ompt.SyncAcquired, ompt.SyncTaskwait, cur.id)
}

// drainAllTasks runs the team's tasks to exhaustion (used by serialized
// regions and the end of a region).
func (w *Worker) drainAllTasks() {
	for w.team.pending.Load() > 0 {
		if !w.runOneTask() {
			w.tc.Yield()
		}
	}
}
