package omp

import (
	"sync"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
)

// task is an explicit OpenMP task.
type task struct {
	fn       func(*Worker)
	parent   *task
	children exec.Word
	waiting  exec.Word // parent is blocked in taskwait
	team     *Team
	id       uint64 // spine task id (0 for implicit tasks)
}

// taskDeque is a per-worker work-stealing deque: the owner pushes and
// pops at the tail (LIFO, for locality); thieves steal from the head
// (FIFO, for oldest-first stealing), the classic Cilk/libomp discipline.
type taskDeque struct {
	mu    sync.Mutex
	items []*task
}

func (d *taskDeque) pushTail(t *task) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

func (d *taskDeque) popTail() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	t := d.items[n-1]
	d.items[n-1] = nil
	d.items = d.items[:n-1]
	return t
}

func (d *taskDeque) stealHead() *task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	t := d.items[0]
	copy(d.items, d.items[1:])
	d.items[len(d.items)-1] = nil
	d.items = d.items[:len(d.items)-1]
	return t
}

// currentTask returns the task whose body the worker is executing (the
// implicit task when outside any explicit task).
func (w *Worker) currentTask() *task {
	if w.curTask == nil {
		// Lazily create the implicit task of this thread.
		w.curTask = &task{team: w.team}
	}
	return w.curTask
}

// taskCreateNS is the allocation + descriptor setup cost of one explicit
// task beyond the malloc itself.
const taskCreateNS = 55

// taskDispatchNS is the dequeue-and-invoke cost.
const taskDispatchNS = 40

// Task creates an explicit task (#pragma omp task). The task may execute
// on any thread of the team, at task scheduling points (barriers,
// taskwait, task creation under load).
func (w *Worker) Task(fn func(*Worker)) {
	tc := w.tc
	c := tc.Costs()
	tc.Charge(c.MallocNS + taskCreateNS)
	parent := w.currentTask()
	t := &task{fn: fn, parent: parent, team: w.team, id: w.team.rt.taskSeq.Add(1)}
	w.emitTask(ompt.TaskCreate, t.id, 0)
	parent.children.Add(1)
	w.team.pending.Add(1)
	w.deque.pushTail(t)
}

// TaskIf creates a task when cond is true, otherwise executes fn
// immediately (the if clause of #pragma omp task; EPCC CONDITIONAL_TASK
// measures exactly this with cond false).
func (w *Worker) TaskIf(cond bool, fn func(*Worker)) {
	if cond {
		w.Task(fn)
		return
	}
	// Undeferred task: still a task region, but executed at once.
	w.tc.Charge(taskCreateNS)
	t := &task{fn: fn, parent: w.currentTask(), team: w.team, id: w.team.rt.taskSeq.Add(1)}
	w.emitTask(ompt.TaskCreate, t.id, 0)
	w.runTaskBody(t)
}

// runTaskBody executes t on this worker, maintaining the current-task
// chain and completion accounting.
func (w *Worker) runTaskBody(t *task) {
	prev := w.curTask
	w.curTask = t
	w.emitTask(ompt.TaskSchedule, t.id, 0)
	t.fn(w)
	w.emitTask(ompt.TaskComplete, t.id, 0)
	w.curTask = prev
}

// finishTask propagates completion to the parent and the team.
func (w *Worker) finishTask(t *task) {
	if p := t.parent; p != nil {
		p.children.Add(^uint32(0))
		if p.waiting.Load() == 1 {
			w.tc.FutexWake(&p.children, -1)
		}
	}
	w.team.pending.Add(^uint32(0))
	w.team.rt.TasksRun.Add(1)
}

// runOneTask executes one ready task: own deque first (tail), then steals
// round-robin from teammates (head). It reports whether a task ran.
func (w *Worker) runOneTask() bool {
	tc := w.tc
	c := tc.Costs()
	if t := w.deque.popTail(); t != nil {
		tc.Charge(taskDispatchNS)
		w.runTaskBody(t)
		w.finishTask(t)
		return true
	}
	n := w.team.n
	for k := 1; k < n; k++ {
		victim := w.team.workers[(w.id+w.stealRR+k)%n]
		if victim == nil || victim == w {
			continue
		}
		if t := victim.deque.stealHead(); t != nil {
			w.stealRR = (w.stealRR + k) % n
			tc.Charge(taskDispatchNS + c.CacheLineXferNS)
			w.team.rt.TaskSteals.Add(1)
			w.emitTask(ompt.TaskSteal, t.id, int64(victim.id))
			w.runTaskBody(t)
			w.finishTask(t)
			return true
		}
	}
	return false
}

// Taskwait blocks until all child tasks of the current task complete,
// executing available tasks while it waits (#pragma omp taskwait).
func (w *Worker) Taskwait() {
	cur := w.currentTask()
	tc := w.tc
	w.emitSync(ompt.SyncAcquire, ompt.SyncTaskwait, cur.id)
	for {
		n := cur.children.Load()
		if n == 0 {
			break
		}
		if w.runOneTask() {
			continue
		}
		cur.waiting.Store(1)
		tc.FutexWait(&cur.children, n)
		cur.waiting.Store(0)
	}
	w.emitSync(ompt.SyncAcquired, ompt.SyncTaskwait, cur.id)
}

// drainAllTasks runs the team's tasks to exhaustion (used by serialized
// regions and the end of a region).
func (w *Worker) drainAllTasks() {
	for w.team.pending.Load() > 0 {
		if !w.runOneTask() {
			w.tc.Yield()
		}
	}
}
