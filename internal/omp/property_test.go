package omp

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/sim"
)

// Property: every schedule covers every iteration of every range exactly
// once, for arbitrary range bounds, chunk sizes, and team sizes.
func TestPropertyScheduleCoverage(t *testing.T) {
	f := func(loRaw, spanRaw uint16, chunkRaw uint8, schedRaw, threadsRaw uint8) bool {
		lo := int(loRaw % 1000)
		span := int(spanRaw % 700)
		hi := lo + span
		chunk := int(chunkRaw%32) + 1
		sched := Schedule(schedRaw % 3)
		threads := int(threadsRaw%8) + 1

		layer := exec.NewSimLayer(sim.New(8, int64(loRaw)+1), exec.Costs{})
		rt := New(layer, Options{MaxThreads: 8, Bind: true})
		hits := make([]atomic.Int32, span)
		_, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, threads, func(w *Worker) {
				w.ForEach(lo, hi, ForOpt{Sched: sched, Chunk: chunk}, func(i int) {
					hits[i-lo].Add(1)
				})
			})
			rt.Close(tc)
		})
		if err != nil {
			return false
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: reductions match a sequential fold for arbitrary inputs and
// team sizes (sum of integers avoids FP association issues).
func TestPropertyReduceMatchesFold(t *testing.T) {
	f := func(vals []int16, threadsRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		threads := int(threadsRaw%8) + 1
		var want float64
		for _, v := range vals {
			want += float64(v)
		}
		layer := exec.NewSimLayer(sim.New(8, 3), exec.Costs{})
		rt := New(layer, Options{MaxThreads: 8, Bind: true})
		var got float64
		_, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, threads, func(w *Worker) {
				local := 0.0
				w.ForEach(0, len(vals), ForOpt{Sched: Static}, func(i int) {
					local += float64(vals[i])
				})
				r := w.Reduce(ReduceSum, local)
				w.Master(func() { got = r })
			})
			rt.Close(tc)
		})
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: guided chunks shrink monotonically (never grow) as the loop
// progresses, and the runtime's guided path terminates for any bounds.
func TestPropertyGuidedShrinks(t *testing.T) {
	f := func(spanRaw uint16, threadsRaw uint8) bool {
		span := int(spanRaw%4000) + 1
		threads := int(threadsRaw%8) + 1
		layer := exec.NewSimLayer(sim.New(8, 9), exec.Costs{})
		rt := New(layer, Options{MaxThreads: 8, Bind: true})
		type grab struct{ lo, size int }
		var grabs []grab
		var mu exec.Word
		_ = mu
		_, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, threads, func(w *Worker) {
				w.For(0, span, ForOpt{Sched: Guided}, func(lo, hi int) {
					w.Critical("grabs", func() {
						grabs = append(grabs, grab{lo, hi - lo})
					})
				})
			})
			rt.Close(tc)
		})
		if err != nil {
			return false
		}
		// Sort by lo: chunk sizes in address order never grow by more
		// than the guided bound allows (size <= remaining/(2n) or min).
		total := 0
		for _, g := range grabs {
			total += g.size
		}
		if total != span {
			return false
		}
		for _, g := range grabs {
			remaining := span - g.lo
			bound := remaining/(2*threads) + 1
			if g.size > bound && g.size > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the task-aware barrier never loses tasks, regardless of how
// many each thread creates.
func TestPropertyTasksAllComplete(t *testing.T) {
	f := func(perThreadRaw [8]uint8) bool {
		layer := exec.NewSimLayer(sim.New(8, 17), exec.Costs{MallocNS: 40})
		rt := New(layer, Options{MaxThreads: 8, Bind: true})
		var want, done atomic.Int64
		_, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, 8, func(w *Worker) {
				n := int(perThreadRaw[w.ThreadNum()] % 20)
				want.Add(int64(n))
				for i := 0; i < n; i++ {
					w.Task(func(*Worker) { done.Add(1) })
				}
				w.Barrier()
				if done.Load() != want.Load() {
					// Barrier released before all tasks done.
					done.Store(-1 << 40)
				}
			})
			rt.Close(tc)
		})
		return err == nil && done.Load() == want.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
