package omp

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/sim"
)

// stampBoard records, per task index, a globally ordered start and end
// stamp; dependence tests assert end(pred) < start(succ) for every edge.
type stampBoard struct {
	seq   atomic.Int64
	start []atomic.Int64
	end   []atomic.Int64
}

func newStampBoard(n int) *stampBoard {
	return &stampBoard{start: make([]atomic.Int64, n), end: make([]atomic.Int64, n)}
}

func (b *stampBoard) body(i int) func(*Worker) {
	return func(w *Worker) {
		b.start[i].Store(b.seq.Add(1))
		w.TC().Charge(200)
		b.end[i].Store(b.seq.Add(1))
	}
}

func (b *stampBoard) checkEdges(t *testing.T, edges [][2]int) {
	t.Helper()
	for _, e := range edges {
		pe, ss := b.end[e[0]].Load(), b.start[e[1]].Load()
		if pe == 0 || ss == 0 {
			t.Fatalf("task %d or %d never ran (end=%d start=%d)", e[0], e[1], pe, ss)
		}
		if pe >= ss {
			t.Errorf("dependence violated: task %d finished at %d, successor %d started at %d", e[0], pe, e[1], ss)
		}
	}
}

func TestTaskDependChain(t *testing.T) {
	// out -> {in, in} -> inout -> out over one location: the writer runs
	// before the readers, the readers before the next writer.
	edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var x int
		board := newStampBoard(5)
		rt.Parallel(tc, 8, func(w *Worker) {
			w.Master(func() {
				w.TaskWith(TaskOpt{Depend: []Dep{Out(&x)}}, board.body(0))
				w.TaskWith(TaskOpt{Depend: []Dep{In(&x)}}, board.body(1))
				w.TaskWith(TaskOpt{Depend: []Dep{In(&x)}}, board.body(2))
				w.TaskWith(TaskOpt{Depend: []Dep{InOut(&x)}}, board.body(3))
				w.TaskWith(TaskOpt{Depend: []Dep{Out(&x)}}, board.body(4))
			})
			w.Barrier()
		})
		board.checkEdges(t, edges)
	})
}

func TestTaskDependDistinctLocationsUnordered(t *testing.T) {
	// Tasks naming different locations carry no edges: both must run,
	// and the runtime must not have created any dependence edges.
	forBothLayers(t, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var x, y int
		var done atomic.Int64
		before := rt.TaskDepEdges.Load()
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Master(func() {
				w.TaskWith(TaskOpt{Depend: []Dep{Out(&x)}}, func(*Worker) { done.Add(1) })
				w.TaskWith(TaskOpt{Depend: []Dep{Out(&y)}}, func(*Worker) { done.Add(1) })
			})
			w.Barrier()
		})
		if done.Load() != 2 {
			t.Fatalf("ran %d tasks, want 2", done.Load())
		}
		if got := rt.TaskDepEdges.Load() - before; got != 0 {
			t.Errorf("distinct locations created %d edges, want 0", got)
		}
	})
}

// depPlan is a randomly generated dependence workload plus its model
// edge set (the ordering constraints the spec implies).
type depPlan struct {
	clauses [][]Dep  // per task, over shared addresses
	edges   [][2]int // deduplicated (pred, succ) pairs
}

// genDepPlan mirrors registerDeps' resolution rules on a model
// last-writer/readers table while generating random clauses.
func genDepPlan(rng *rand.Rand, nTasks, nAddrs int, addrs []*int) depPlan {
	p := depPlan{clauses: make([][]Dep, nTasks)}
	type entry struct {
		lastOut int
		readers []int
	}
	model := make([]entry, nAddrs)
	for i := range model {
		model[i].lastOut = -1
	}
	seen := map[[2]int]bool{}
	addEdge := func(pred, succ int) {
		if pred < 0 || pred == succ || seen[[2]int{pred, succ}] {
			return
		}
		seen[[2]int{pred, succ}] = true
		p.edges = append(p.edges, [2]int{pred, succ})
	}
	for i := 0; i < nTasks; i++ {
		nc := 1 + rng.Intn(2)
		for c := 0; c < nc; c++ {
			a := rng.Intn(nAddrs)
			mode := DepMode(rng.Intn(3))
			p.clauses[i] = append(p.clauses[i], Dep{Mode: mode, Addr: addrs[a]})
			e := &model[a]
			switch mode {
			case DepIn:
				addEdge(e.lastOut, i)
				e.readers = append(e.readers, i)
			default:
				addEdge(e.lastOut, i)
				for _, r := range e.readers {
					addEdge(r, i)
				}
				e.lastOut = i
				e.readers = e.readers[:0]
			}
		}
	}
	return p
}

func TestTaskDependFuzz(t *testing.T) {
	// Random in/out/inout chains over a handful of locations: every
	// model edge must be respected by the observed start/end stamps, on
	// both execution layers (the real-layer runs double as the -race
	// workload for the registration/release protocol).
	const nTasks, nAddrs = 48, 4
	addrs := make([]*int, nAddrs)
	for i := range addrs {
		addrs[i] = new(int)
	}
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		plan := genDepPlan(rng, nTasks, nAddrs, addrs)
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
				board := newStampBoard(nTasks)
				rt.Parallel(tc, 8, func(w *Worker) {
					w.Master(func() {
						for i := 0; i < nTasks; i++ {
							w.TaskWith(TaskOpt{Depend: plan.clauses[i]}, board.body(i))
						}
					})
					w.Barrier()
				})
				board.checkEdges(t, plan.edges)
			})
		})
	}
}

func TestTaskDependSimStreamDeterministic(t *testing.T) {
	// The same seeded plan on the same simulator seed must produce the
	// same task event stream, byte for byte — the property the tasking
	// ablation's two-run diff rests on.
	addrs := []*int{new(int), new(int), new(int)}
	plan := genDepPlan(rand.New(rand.NewSource(7)), 32, 3, addrs)
	capture := func() []string {
		var mu sync.Mutex
		var events []string
		sp := ompt.NewSpine()
		sp.On(func(ev ompt.Event) {
			mu.Lock()
			events = append(events, fmt.Sprintf("%d:%d:%d:%d", ev.Kind, ev.Thread, ev.Obj, ev.Arg0))
			mu.Unlock()
		}, ompt.TaskCreate, ompt.TaskSchedule, ompt.TaskComplete, ompt.TaskSteal,
			ompt.TaskDependence, ompt.TaskgroupBegin, ompt.TaskgroupEnd)
		layer := exec.NewSimLayer(sim.New(8, 11), simCosts())
		rt := New(layer, Options{MaxThreads: 8, Bind: true, Spine: sp})
		_, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, 8, func(w *Worker) {
				w.Master(func() {
					w.Taskgroup(func(gw *Worker) {
						for i := range plan.clauses {
							gw.TaskWith(TaskOpt{Depend: plan.clauses[i]}, func(tw *Worker) { tw.TC().Charge(300) })
						}
					})
				})
				w.Barrier()
			})
			rt.Close(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return events
	}
	a, b := capture(), capture()
	if len(a) != len(b) {
		t.Fatalf("event stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no task events captured")
	}
}

func TestTaskgroupWaitsForDescendants(t *testing.T) {
	// A taskgroup waits for all descendants of its members — including
	// grandchildren created without any intervening taskwait.
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var leaves atomic.Int64
		var violated atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			w.Master(func() {
				w.Taskgroup(func(gw *Worker) {
					for i := 0; i < 5; i++ {
						gw.Task(func(cw *Worker) {
							for j := 0; j < 4; j++ {
								cw.Task(func(*Worker) { leaves.Add(1) })
							}
							// No taskwait: the group alone must hold the region.
						})
					}
				})
				if leaves.Load() != 20 {
					violated.Store(leaves.Load())
				}
			})
			w.Barrier()
		})
		if v := violated.Load(); v != 0 {
			t.Errorf("taskgroup returned with %d/20 descendants done", v)
		}
	})
}

func TestTaskgroupIgnoresOutsideSiblings(t *testing.T) {
	// A task created before the group opens is not a member: the group
	// must complete without it. The sibling charges far more virtual
	// time than the whole group, so on the simulator it is provably
	// still in flight (or unstarted) when the group closes — unless the
	// master itself picked it up at a scheduling point, which the spec
	// permits; that case is skipped rather than misreported.
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var sibDone atomic.Int64
		var sibRunBy atomic.Int64
		sibRunBy.Store(-1)
		var violated atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			w.Master(func() {
				w.Task(func(tw *Worker) {
					sibRunBy.Store(int64(tw.ThreadNum()))
					tw.TC().Charge(5_000_000)
					sibDone.Store(1)
				})
				w.Taskgroup(func(gw *Worker) {
					for i := 0; i < 20; i++ {
						gw.Task(func(tw *Worker) { tw.TC().Charge(1000) })
					}
				})
				if sibRunBy.Load() != 0 && sibDone.Load() == 1 {
					violated.Store(1)
				}
			})
			w.Barrier()
		})
		if violated.Load() != 0 {
			t.Error("taskgroup end waited for a task created before the group opened")
		}
	})
}

func TestTaskloopNotBlockedByPriorSibling(t *testing.T) {
	// Regression: taskloop's implicit wait used to be a taskwait, which
	// waits on *all* children of the current task — so a long-running
	// task created before the taskloop stalled it. With the implicit
	// taskgroup it must return as soon as its own tasks are done.
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var sibDone atomic.Int64
		var sibRunBy atomic.Int64
		sibRunBy.Store(-1)
		var covered atomic.Int64
		var violated atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			w.Master(func() {
				w.Task(func(tw *Worker) {
					sibRunBy.Store(int64(tw.ThreadNum()))
					tw.TC().Charge(5_000_000)
					sibDone.Store(1)
				})
				w.Taskloop(0, 40, TaskloopOpt{}, func(tw *Worker, i int) {
					tw.TC().Charge(1000)
					covered.Add(1)
				})
				if covered.Load() != 40 {
					violated.Store(1) // the loop's own tasks were not awaited
				}
				if sibRunBy.Load() != 0 && sibDone.Load() == 1 {
					violated.Store(2) // the loop waited on the unrelated sibling
				}
			})
			w.Barrier()
		})
		switch violated.Load() {
		case 1:
			t.Error("taskloop returned before its own tasks completed")
		case 2:
			t.Error("taskloop blocked on a pre-existing sibling task")
		}
	})
}

func TestTaskDependExactlyOnceUnderChurn(t *testing.T) {
	// Regression for the registration/release race: a predecessor that
	// finishes (on a thief) while the encountering thread is still
	// registering a successor's edges must release the successor exactly
	// once. Near-empty predecessor bodies maximize the window; a double
	// release runs the successor twice and underflows the pending
	// counters. The real-layer run doubles as the -race workload.
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		const rounds = 300
		runs := make([]atomic.Int64, rounds)
		rt.Parallel(tc, 8, func(w *Worker) {
			w.Master(func() {
				var x int
				for i := 0; i < rounds; i++ {
					i := i
					w.TaskWith(TaskOpt{Depend: []Dep{Out(&x)}}, func(*Worker) {})
					w.TaskWith(TaskOpt{Depend: []Dep{InOut(&x)}}, func(*Worker) { runs[i].Add(1) })
				}
			})
			w.Barrier()
		})
		for i := range runs {
			if n := runs[i].Load(); n != 1 {
				t.Fatalf("round %d successor ran %d times, want 1", i, n)
			}
		}
	})
}

func TestUndeferredTaskWithDepsCompletesBeforeReturn(t *testing.T) {
	// An undeferred task (if(false)) held on dependences must still
	// complete before the encountering thread passes the construct, and
	// must run on the encountering thread — not migrate to whichever
	// worker releases it.
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var violated atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			w.Master(func() {
				var x int
				var predDone, ran atomic.Int64
				w.TaskWith(TaskOpt{Depend: []Dep{Out(&x)}}, func(tw *Worker) {
					tw.TC().Charge(100_000)
					predDone.Store(1)
				})
				w.TaskWith(TaskOpt{Undeferred: true, Depend: []Dep{In(&x)}}, func(tw *Worker) {
					if predDone.Load() != 1 {
						violated.Store(1) // ran before its predecessor finished
					}
					if tw != w {
						violated.Store(2) // migrated off the encountering thread
					}
					ran.Store(1)
				})
				if ran.Load() != 1 {
					violated.Store(3) // construct returned before the body ran
				}
			})
			w.Barrier()
		})
		if v := violated.Load(); v != 0 {
			t.Errorf("undeferred-with-deps semantics violated (code %d)", v)
		}
	})
}

func TestTaskgroupPanicRestoresCurrentGroup(t *testing.T) {
	// A panic unwinding out of a taskgroup body to a recover in the
	// region must not leave curGroup pointing at the dead group, which
	// would silently enroll every later task in a group nobody waits on.
	forBothLayers(t, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var after atomic.Int64
		var dangles atomic.Int64
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Master(func() {
				func() {
					defer func() { _ = recover() }()
					w.Taskgroup(func(*Worker) {
						panic("taskgroup body panics")
					})
				}()
				if w.curGroup != nil {
					dangles.Store(1)
				}
				w.Task(func(*Worker) { after.Add(1) })
				w.Taskwait()
			})
			w.Barrier()
		})
		if dangles.Load() != 0 {
			t.Error("curGroup still points at the dead group after a recovered panic")
		}
		if after.Load() != 1 {
			t.Errorf("post-panic task ran %d times, want 1", after.Load())
		}
	})
}

func TestTaskFinalRunsDescendantsUndeferred(t *testing.T) {
	// final propagates: tasks created inside a final task are included
	// tasks — they execute immediately on the encountering thread.
	forBothLayers(t, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var violated atomic.Int64
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Master(func() {
				w.TaskWith(TaskOpt{Final: true}, func(fw *Worker) {
					inline := false
					fw.Task(func(cw *Worker) {
						if cw != fw {
							violated.Store(1) // ran on a different worker
						}
						inline = true
					})
					if !inline {
						violated.Store(2) // deferred despite the final ancestor
					}
				})
				w.Taskwait()
			})
			w.Barrier()
		})
		if v := violated.Load(); v != 0 {
			t.Errorf("included-task semantics violated (code %d)", v)
		}
	})
}

func TestTaskCutoffThrottles(t *testing.T) {
	// With a queue-depth cutoff, a single-producer flood must trip the
	// throttle (counted in TaskCutoffs) and still run every task. The
	// counter assertion is simulator-only: on the real layer thieves can
	// drain the deque fast enough that the depth never reaches the bound.
	layers := testLayers()
	for _, name := range []string{"real", "sim"} {
		mk := layers[name]
		t.Run(name, func(t *testing.T) {
			run(t, mk, Options{MaxThreads: 8, Bind: true, TaskCutoff: 4}, func(rt *Runtime, tc exec.TC) {
				var done atomic.Int64
				rt.Parallel(tc, 8, func(w *Worker) {
					w.Master(func() {
						for i := 0; i < 100; i++ {
							w.Task(func(tw *Worker) {
								tw.TC().Charge(2000)
								done.Add(1)
							})
						}
					})
					w.Barrier()
				})
				if done.Load() != 100 {
					t.Fatalf("ran %d tasks, want 100", done.Load())
				}
				if name == "sim" && rt.TaskCutoffs.Load() == 0 {
					t.Error("cutoff 4 never tripped under a 100-task single-producer flood")
				}
			})
		})
	}
}

func TestStealRotatesOnFailedSweep(t *testing.T) {
	// A failed sweep must still advance the rotation start so the next
	// sweep probes a shifted victim window (the stealRR regression).
	// Pins the round-robin sweep: placed teams default to nearest-first,
	// which rotates per-ring cursors instead (TestStealNearestRotates).
	run(t, testLayers()["sim"], Options{MaxThreads: 4, Bind: true, StealOrder: StealRR}, func(rt *Runtime, tc exec.TC) {
		var violated atomic.Int64
		rt.Parallel(tc, 4, func(w *Worker) {
			before := w.stealRR
			if w.runOneTask() {
				violated.Store(1) // nothing was queued; a sweep cannot succeed
				return
			}
			if w.stealRR != (before+1)%4 {
				violated.Store(2)
			}
		})
		switch violated.Load() {
		case 1:
			t.Fatal("runOneTask claimed success on an empty pool")
		case 2:
			t.Error("failed sweep did not rotate the steal start")
		}
	})
}

func TestTaskEnvParsing(t *testing.T) {
	lookupIn := func(env map[string]string) func(string) (string, bool) {
		return func(k string) (string, bool) { v, ok := env[k]; return v, ok }
	}
	var o Options
	good := map[string]string{
		"KOMP_TASK_DEQUE":       "mutex",
		"KOMP_TASK_CUTOFF":      "16",
		"KOMP_TASK_STEAL_TRIES": "4",
	}
	if err := o.Env(lookupIn(good)); err != nil {
		t.Fatal(err)
	}
	if o.TaskDeque != DequeMutex || o.TaskCutoff != 16 || o.TaskStealTries != 4 {
		t.Fatalf("opts = %+v", o)
	}
	if err := o.Env(lookupIn(map[string]string{"KOMP_TASK_DEQUE": "Chase-Lev"})); err != nil {
		t.Fatal(err)
	}
	if o.TaskDeque != DequeChaseLev {
		t.Fatalf("TaskDeque = %v", o.TaskDeque)
	}
	for _, bad := range []map[string]string{
		{"KOMP_TASK_DEQUE": "treiber"},
		{"KOMP_TASK_CUTOFF": "-1"},
		{"KOMP_TASK_CUTOFF": "many"},
		{"KOMP_TASK_STEAL_TRIES": "-3"},
	} {
		if err := o.Env(lookupIn(bad)); err == nil {
			t.Errorf("%v must error", bad)
		}
	}
}

func TestTaskDequeAlgosEquivalentUnderStress(t *testing.T) {
	// Both deque algorithms must run an imbalanced nested-task workload
	// to completion with identical task counts, on both layers.
	for _, algo := range []TaskDequeAlgo{DequeChaseLev, DequeMutex} {
		t.Run(algo.String(), func(t *testing.T) {
			forBothLayers(t, Options{MaxThreads: 8, Bind: true, TaskDeque: algo}, func(rt *Runtime, tc exec.TC) {
				var done atomic.Int64
				rt.Parallel(tc, 8, func(w *Worker) {
					if w.ThreadNum()%2 == 0 {
						for k := 0; k < 25; k++ {
							w.Task(func(cw *Worker) {
								cw.Task(func(*Worker) { done.Add(1) })
								done.Add(1)
							})
						}
					}
					w.Barrier()
				})
				if done.Load() != 200 {
					t.Errorf("done = %d, want 200", done.Load())
				}
			})
		})
	}
}
