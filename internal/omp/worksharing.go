package omp

import (
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
)

// ForOpt configures a worksharing loop.
type ForOpt struct {
	// Sched selects the schedule; Chunk its chunk size (0 = default:
	// block partition for static, 1 for dynamic, min 1 for guided).
	Sched Schedule
	Chunk int
	// NoWait elides the implicit barrier at loop end.
	NoWait bool
}

// loopDesc is the shared descriptor of one dynamically-scheduled loop.
type loopDesc struct {
	lo, hi int
	chunk  int
	sched  Schedule
	next   exec.Word // offset from lo, in iterations
	line   exec.Line // the cache line the shared counter lives on
	done   exec.Word // threads finished with this loop
	// ordNext is the ordered-construct cursor (absolute iteration).
	ordNext exec.Word
}

// getLoop returns this thread's next loop construct's dispatch buffer,
// claiming a ring slot on first arrival — no lock, no allocation.
func (w *Worker) getLoop(lo, hi int, opt ForOpt) *loopBuf {
	id := w.loopSeen
	w.loopSeen++
	w.loopPos.Store(id + 1) // publish progress before touching the ring
	return w.acquireLoop(id, lo, hi, opt)
}

// putLoop is a thread's last touch of a loop construct. The nth arrival
// retires the buffer; under team shrink the count is unreachable and the
// buffer is instead reclaimed by acquireLoop's quiescence rescue when
// the ring wraps onto it.
func (w *Worker) putLoop(id uint32, b *loopBuf) {
	t := w.team
	if b.d.done.Add(1) == uint32(t.n) {
		t.freeLoop(b, id+1)
	}
}

// For executes the canonical worksharing loop for the half-open range
// [lo, hi). The body receives contiguous sub-ranges (chunks); use ForEach
// for a per-iteration body. The implicit barrier at the end is elided
// with NoWait.
func (w *Worker) For(lo, hi int, opt ForOpt, body func(lo, hi int)) {
	c := w.tc.Costs()
	n := w.team.n
	// The work events carry the declared schedule; the chunk events show
	// what actually ran (a resiliently degraded static loop dispatches
	// dynamic-style chunks under a loop-static work region).
	wk := workKind(opt.Sched)
	seq := uint64(w.loopSeen)
	w.emitWork(ompt.WorkBegin, wk, seq, int64(lo), int64(hi))
	sched := opt.Sched
	if (sched == Static || sched == Affinity) && w.team.resilient {
		// Under team shrink a block partition computed from the team
		// size would silently lose a dead worker's block; degrade to
		// shared-counter chunk claiming so every iteration is claimed
		// exactly once whatever subset of the team survives. The chunk
		// size is a pure function of the bounds and team size, so every
		// worker degrades identically.
		sched = Dynamic
		if opt.Chunk <= 0 {
			opt.Chunk = (hi - lo + 8*n - 1) / (8 * n)
			if opt.Chunk < 1 {
				opt.Chunk = 1
			}
		}
	}
	if w.team.cancellable && w.pollCancel()&cancelBitParallel != 0 {
		// The region is cancelled: skip the construct, keeping sequence
		// counters and published progress in step with teammates that
		// consumed it, so ring quiescence proofs and per-thread event
		// pairing stay valid. The closing barrier is a no-op too.
		if sched == Dynamic || sched == Guided {
			w.loopSeen++
			w.loopPos.Store(w.loopSeen)
		}
		w.emitWork(ompt.WorkEnd, wk, seq, int64(lo), int64(hi))
		if !opt.NoWait {
			w.Barrier()
		}
		return
	}
	switch sched {
	case Static:
		w.tc.Charge(staticSetupNS)
		w.staticChunks(w.id, lo, hi, opt.Chunk, wk, seq, body)
	case Affinity:
		// Identical block math to static, but blocks are dealt by the
		// worker's rank in place (CPU) order instead of its thread id, so
		// the chunk→CPU mapping survives whatever thread-number
		// permutation the binding policy dealt — repeated passes over the
		// same range touch the same memory from the same place, and
		// first-touched pages stay local.
		w.tc.Charge(staticSetupNS + int64(n)) // + the O(team) rank scan
		w.staticChunks(w.placeRank(), lo, hi, opt.Chunk, wk, seq, body)
	case Dynamic:
		id := w.loopSeen
		b := w.getLoop(lo, hi, opt)
		if b == nil {
			break // cancelled while acquiring the dispatch buffer
		}
		d := &b.d
		for {
			if w.doomed() {
				w.die() // safe point: unclaimed chunks go to survivors
			}
			if w.team.cancellable && w.pollCancel() != 0 {
				// Cancelled (the construct or the whole region): stop
				// claiming; remaining chunks are abandoned. Arrival
				// accounting below still runs, so retirement is intact.
				break
			}
			// The shared chunk counter is one cache line: grabs
			// serialize across the team (the real cost of dynamic,1).
			w.tc.Contend(&d.line, c.AtomicRMWNS+c.CacheLineXferNS)
			off := int(d.next.Add(uint32(d.chunk))) - d.chunk
			s := lo + off
			if s >= hi {
				break
			}
			e := s + d.chunk
			if e > hi {
				e = hi
			}
			w.emitWork(ompt.DispatchChunk, wk, seq, int64(s), int64(e))
			body(s, e)
		}
		w.putLoop(id, b)
	case Guided:
		id := w.loopSeen
		b := w.getLoop(lo, hi, opt)
		if b == nil {
			break // cancelled while acquiring the dispatch buffer
		}
		d := &b.d
		total := hi - lo
		for {
			if w.doomed() {
				w.die() // safe point: unclaimed chunks go to survivors
			}
			if w.team.cancellable && w.pollCancel() != 0 {
				break // cancelled: remaining chunks are abandoned
			}
			w.tc.Contend(&d.line, c.AtomicRMWNS+c.CacheLineXferNS)
			var s, e int
			for {
				off := int(d.next.Load())
				if off >= total {
					s = hi
					break
				}
				remaining := total - off
				sz := remaining / (2 * n)
				if sz < d.chunk {
					sz = d.chunk
				}
				if sz > remaining {
					sz = remaining
				}
				if d.next.CompareAndSwap(uint32(off), uint32(off+sz)) {
					s, e = lo+off, lo+off+sz
					break
				}
				w.tc.Charge(c.AtomicRMWNS)
			}
			if s >= hi {
				break
			}
			w.emitWork(ompt.DispatchChunk, wk, seq, int64(s), int64(e))
			body(s, e)
		}
		w.putLoop(id, b)
	}
	w.emitWork(ompt.WorkEnd, wk, seq, int64(lo), int64(hi))
	if !opt.NoWait {
		w.Barrier()
	}
}

// staticSetupNS is the cost of computing a static partition.
const staticSetupNS = 25

// staticChunks executes the static partition of [lo, hi) owned by rank:
// the block partition when chunk <= 0, round-robin chunks otherwise.
// Static passes the thread id as rank; Affinity passes the place rank.
func (w *Worker) staticChunks(rank, lo, hi, chunk int, wk ompt.Work, seq uint64, body func(lo, hi int)) {
	n := w.team.n
	if chunk <= 0 {
		// Block partition.
		total := hi - lo
		base := total / n
		rem := total % n
		myLo := lo + rank*base + min(rank, rem)
		myHi := myLo + base
		if rank < rem {
			myHi++
		}
		if myLo < myHi {
			if w.team.cancellable && w.pollCancel() != 0 {
				return // cancelled: the block is abandoned
			}
			w.emitWork(ompt.DispatchChunk, wk, seq, int64(myLo), int64(myHi))
			body(myLo, myHi)
		}
		return
	}
	// Round-robin chunks.
	for s := lo + rank*chunk; s < hi; s += n * chunk {
		if w.team.cancellable && w.pollCancel() != 0 {
			return // cancelled: remaining chunks are abandoned
		}
		e := s + chunk
		if e > hi {
			e = hi
		}
		w.emitWork(ompt.DispatchChunk, wk, seq, int64(s), int64(e))
		body(s, e)
	}
}

// ForEach is For with a per-iteration body.
func (w *Worker) ForEach(lo, hi int, opt ForOpt, body func(i int)) {
	w.For(lo, hi, opt, func(s, e int) {
		for i := s; i < e; i++ {
			body(i)
		}
	})
}

// ForOrdered executes a worksharing loop with an ordered clause. The body
// receives the iteration index and an ordered closure that runs its
// argument in strict iteration order.
func (w *Worker) ForOrdered(lo, hi int, opt ForOpt, body func(i int, ordered func(func()))) {
	id := w.loopSeen // the descriptor the chunk iterator will use
	var d *loopDesc
	inner := func(i int) {
		body(i, func(fn func()) {
			tc := w.tc
			want := uint32(i - lo)
			w.emitSync(ompt.SyncAcquire, ompt.SyncOrdered, uint64(id))
			for {
				cur := d.ordNext.Load()
				if cur == want {
					break
				}
				// Blocking on the cursor is a futex wait; FutexWait
				// charges the wait-entry cost itself (including the
				// re-check race where the value moved on), so the loop
				// adds nothing.
				tc.FutexWait(&d.ordNext, cur)
			}
			w.emitSync(ompt.SyncAcquired, ompt.SyncOrdered, uint64(id))
			fn()
			d.ordNext.Add(1)
			tc.FutexWake(&d.ordNext, -1)
			w.emitSync(ompt.SyncRelease, ompt.SyncOrdered, uint64(id))
		})
	}
	// Pre-create the descriptor so `d` is bound before iteration.
	b := w.getLoop(lo, hi, opt)
	if b == nil {
		// Cancelled while acquiring the dispatch buffer: the whole
		// construct is skipped (its closing barrier is a no-op).
		if !opt.NoWait {
			w.Barrier()
		}
		return
	}
	d = &b.d
	w.loopSeen-- // getLoop in For will re-fetch the same id
	w.ForEach(lo, hi, ForOpt{Sched: opt.Sched, Chunk: opt.Chunk, NoWait: true}, inner)
	if w.loopSeen == id { // static path did not consume the descriptor
		w.loopSeen++
		w.putLoop(id, b)
	}
	if !opt.NoWait {
		w.Barrier()
	}
}

// Single runs fn on the first thread to arrive; the others skip it. The
// construct ends with a barrier unless nowait.
func (w *Worker) Single(nowait bool, fn func()) {
	w.singleImpl(nowait, func() { fn() })
}

// SingleCopyPrivate runs fn on one thread and broadcasts its result to
// every thread's return value (the copyprivate clause). It always ends
// with a barrier (copyprivate requires it).
func (w *Worker) SingleCopyPrivate(fn func() any) any {
	t := w.team
	w.singleImpl(true, func() {
		t.cpVal = fn()
	})
	w.Barrier()
	v := t.cpVal
	w.Barrier() // the value must be read before the next single overwrites it
	return v
}

func (w *Worker) singleImpl(nowait bool, fn func()) {
	t := w.team
	tc := w.tc
	c := tc.Costs()
	id := w.singleSeen
	w.singleSeen++
	w.emitWork(ompt.WorkBegin, ompt.WorkSingle, uint64(id), 0, 0)
	if t.n == 1 {
		fn()
		w.emitWork(ompt.WorkEnd, ompt.WorkSingle, uint64(id), 1, 0)
		return
	}
	if t.cancellable && w.pollCancel()&cancelBitParallel != 0 {
		// Cancelled region: skip the construct (nobody runs the body),
		// keeping published progress in step for ring quiescence.
		w.singlePos.Store(id + 1)
		w.emitWork(ompt.WorkEnd, ompt.WorkSingle, uint64(id), 0, 0)
		if !nowait {
			w.Barrier()
		}
		return
	}
	w.singlePos.Store(id + 1) // publish progress before touching the ring
	b := w.acquireSingle(id)
	if b == nil {
		// Cancelled while acquiring the dispatch buffer.
		w.emitWork(ompt.WorkEnd, ompt.WorkSingle, uint64(id), 0, 0)
		if !nowait {
			w.Barrier()
		}
		return
	}
	// The winner election bounces the slot's line across arrivals.
	tc.Contend(&b.line, c.AtomicRMWNS+c.CacheLineXferNS)
	won := int64(0)
	if b.won.CompareAndSwap(0, 1) {
		won = 1
		fn()
	}
	// Arrival accounting: the nth arrival retires the buffer (under team
	// shrink the quiescence rescue in acquireSingle reclaims it instead).
	if b.done.Add(1) == uint32(t.n) {
		t.freeSingle(b, id+1)
	}
	w.emitWork(ompt.WorkEnd, ompt.WorkSingle, uint64(id), won, 0)
	if !nowait {
		w.Barrier()
	}
}

// Sections distributes the given section bodies over the team (dynamic,
// one section per grab), with the implicit end barrier unless nowait.
func (w *Worker) Sections(nowait bool, sections ...func()) {
	seq := uint64(w.sectionSeen)
	w.sectionSeen++
	w.emitWork(ompt.WorkBegin, ompt.WorkSections, seq, 0, int64(len(sections)))
	w.ForEach(0, len(sections), ForOpt{Sched: Dynamic, Chunk: 1, NoWait: true}, func(i int) {
		sections[i]()
	})
	w.emitWork(ompt.WorkEnd, ompt.WorkSections, seq, 0, int64(len(sections)))
	if !nowait {
		w.Barrier()
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
