package omp

import (
	"strings"
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/device"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/fault"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/sim"
)

func envOf(vars map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) {
		v, ok := vars[k]
		return v, ok
	}
}

// TestDeviceICVParsing covers the offload environment variables:
// OMP_DEFAULT_DEVICE, KOMP_DEVICE, KOMP_DEVICE_MEM and KOMP_RESILIENT,
// good values and the error text of bad ones.
func TestDeviceICVParsing(t *testing.T) {
	good := map[string]string{
		"OMP_DEFAULT_DEVICE": "-1",
		"KOMP_DEVICE":        " 16 , 64 ",
		"KOMP_DEVICE_MEM":    "256m",
		"KOMP_RESILIENT":     "true",
	}
	var o Options
	if err := o.Env(envOf(good)); err != nil {
		t.Fatalf("Env: %v", err)
	}
	if o.DefaultDevice != -1 || o.DeviceCUs != 16 || o.DeviceLanes != 64 ||
		o.DeviceMemBytes != 256<<20 || !o.Resilient {
		t.Errorf("parsed %+v, want DefaultDevice=-1 DeviceCUs=16 DeviceLanes=64 DeviceMemBytes=%d Resilient=true",
			o, 256<<20)
	}

	bad := []struct{ key, val, want string }{
		{"OMP_DEFAULT_DEVICE", "gpu", "OMP_DEFAULT_DEVICE"},
		{"KOMP_DEVICE", "16", "want cus,lanes"},
		{"KOMP_DEVICE", "0,64", "want cus,lanes"},
		{"KOMP_DEVICE", "16,-2", "want cus,lanes"},
		{"KOMP_DEVICE_MEM", "lots", "KOMP_DEVICE_MEM"},
		{"KOMP_DEVICE_MEM", "-3m", "KOMP_DEVICE_MEM"},
		{"KOMP_RESILIENT", "maybe", "KOMP_RESILIENT"},
	}
	for _, c := range bad {
		var o Options
		err := o.Env(envOf(map[string]string{c.key: c.val}))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s=%q: err = %v, want one containing %q", c.key, c.val, err, c.want)
		}
	}
}

// TestDeviceLazyConstruction: the runtime builds its device from the
// configured geometry on first use, honours the memory override, and
// prefers an injected instance (the shared per-machine device of the
// simulated environments).
func TestDeviceLazyConstruction(t *testing.T) {
	l := exec.NewSimLayer(sim.New(4, 1), simCosts())
	rt := New(l, Options{MaxThreads: 2, DeviceCUs: 6, DeviceLanes: 16, DeviceMemBytes: 4096})
	d := rt.Device()
	if d.Topo().CUs != 6 || d.Topo().LanesPerCU != 16 || d.Topo().MemBytes != 4096 {
		t.Errorf("device topo %+v, want 6 CUs x 16 lanes, 4096 bytes", d.Topo())
	}
	if rt.Device() != d {
		t.Error("Device() is not idempotent")
	}

	inj := device.New(machine.DefaultDevice(2, 4), 3, nil)
	rt2 := New(l, Options{MaxThreads: 2, Device: inj, DeviceCUs: 99})
	if rt2.Device() != inj {
		t.Error("injected Options.Device was not preferred over geometry")
	}
}

func targetSumKernel(d *device.Dev, a []float64, iterNS int64) device.Kernel {
	return device.Kernel{
		Name: "sum", N: len(a), IterNS: iterNS, BytesPerIter: 8,
		Uses: []any{a},
		Body: func(b device.Block) float64 {
			da := d.Ptr(a).([]float64)
			var s float64
			for i := b.Lo; i < b.Hi; i++ {
				s += da[i]
			}
			return s
		},
		Reduce: func(x, y float64) float64 { return x + y },
	}
}

func targetInput(n int) ([]float64, float64) {
	a := make([]float64, n)
	var want float64
	for i := range a {
		a[i] = float64(i%7 + 1)
		want += a[i]
	}
	return a, want
}

// TestTargetComputesExactReduction: `target` over map clauses produces
// the exact serial reduction on the simulated accelerator, and the
// enclosing `target data` hoists the transfers (the present-table
// refcount moves the operand once each way across many regions).
func TestTargetComputesExactReduction(t *testing.T) {
	l := exec.NewSimLayer(sim.New(4, 1), simCosts())
	rt := New(l, Options{MaxThreads: 2, DeviceCUs: 4, DeviceLanes: 8})
	a, want := targetInput(4096)
	maps := []device.Map{device.MapTofrom(a)}
	var sum float64
	_, err := l.Run(func(tc exec.TC) {
		rt.TargetData(tc, maps, func() {
			for i := 0; i < 4; i++ {
				res, terr := rt.Target(tc, maps, targetSumKernel(rt.Device(), a, 10))
				if terr != nil {
					t.Errorf("Target: %v", terr)
				}
				sum = res.Reduced
			}
		})
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Errorf("reduced %v, want %v", sum, want)
	}
	st := rt.Device().Stats()
	bytes := int64(len(a) * 8)
	if st.BytesH2D != bytes || st.BytesD2H != bytes {
		t.Errorf("traffic h2d=%d d2h=%d, want exactly %d each way (hoisting)", st.BytesH2D, st.BytesD2H, bytes)
	}
	if st.Kernels != 4 {
		t.Errorf("kernels = %d, want 4", st.Kernels)
	}
}

// TestTargetHostFallback: OMP_DEFAULT_DEVICE=-1 runs target regions on
// the encountering thread — same result, no device, no traffic.
func TestTargetHostFallback(t *testing.T) {
	l := exec.NewSimLayer(sim.New(4, 1), simCosts())
	rt := New(l, Options{MaxThreads: 2, DefaultDevice: -1, DeviceCUs: 4, DeviceLanes: 8})
	a, want := targetInput(1024)
	maps := []device.Map{device.MapTofrom(a)}
	var sum float64
	ran := false
	_, err := l.Run(func(tc exec.TC) {
		rt.TargetEnterData(tc, maps...) // no-ops under fallback
		rt.TargetData(tc, maps, func() { ran = true })
		k := device.Kernel{
			Name: "sum", N: len(a), IterNS: 10,
			Body: func(b device.Block) float64 {
				var s float64
				for i := b.Lo; i < b.Hi; i++ {
					s += a[i] // host memory: no translation under fallback
				}
				return s
			},
			Reduce: func(x, y float64) float64 { return x + y },
		}
		res, terr := rt.Target(tc, maps, k)
		if terr != nil {
			t.Errorf("Target: %v", terr)
		}
		sum = res.Reduced
		rt.TargetExitData(tc, maps...)
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("TargetData body did not run under host fallback")
	}
	if sum != want {
		t.Errorf("reduced %v, want %v", sum, want)
	}
	if st := rt.Device().Stats(); st.BytesH2D != 0 || st.BytesD2H != 0 || st.Kernels != 0 {
		t.Errorf("host fallback touched the device: %+v", st)
	}
}

// TestTargetNowaitDependOrdering: `target nowait` is an ordinary task in
// the dependence graph — a depend(out) producer runs before the target
// task, whose completion a taskwait observes.
func TestTargetNowaitDependOrdering(t *testing.T) {
	for _, layer := range []struct {
		name string
		mk   func() exec.Layer
	}{
		{"sim", func() exec.Layer { return exec.NewSimLayer(sim.New(4, 1), simCosts()) }},
		{"real", func() exec.Layer { return exec.NewRealLayer(4) }},
	} {
		t.Run(layer.name, func(t *testing.T) {
			l := layer.mk()
			rt := New(l, Options{MaxThreads: 4, DeviceCUs: 4, DeviceLanes: 8})
			a, want := targetInput(2048)
			var produced, got atomic.Int64
			_, err := l.Run(func(tc exec.TC) {
				rt.Parallel(tc, 4, func(w *Worker) {
					w.Master(func() {
						w.TaskWith(TaskOpt{Depend: []Dep{Out(&a)}}, func(tw *Worker) {
							tw.TC().Charge(50_000)
							produced.Store(1)
						})
						w.TargetNowait(TaskOpt{Depend: []Dep{In(&a)}},
							[]device.Map{device.MapTofrom(a)}, targetSumKernel(rt.Device(), a, 10),
							func(res device.Result, err error) {
								if err != nil {
									t.Errorf("target nowait: %v", err)
								}
								if produced.Load() != 1 {
									t.Error("target task ran before its depend(in) producer")
								}
								got.Store(int64(res.Reduced))
							})
						w.Taskwait()
						if got.Load() != int64(want) {
							t.Errorf("taskwait returned before the target task completed (got %d, want %d)",
								got.Load(), int64(want))
						}
					})
					w.Barrier()
				})
				rt.Close(tc)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOffloadFaultComposition is the KOMP_RESILIENT offload regression:
// a scheduled cu-offline fault plan degrades the league — the dead CU's
// blocks re-deal to the survivors, the reduction stays exact and the run
// terminates — and losing every CU surfaces ErrDeviceLost instead of a
// hang.
func TestOffloadFaultComposition(t *testing.T) {
	plan, err := fault.Parse("cu-offline@200us:1")
	if err != nil {
		t.Fatal(err)
	}
	var o Options
	if err := o.Env(envOf(map[string]string{"KOMP_RESILIENT": "1", "KOMP_DEVICE": "4,8"})); err != nil {
		t.Fatal(err)
	}
	o.MaxThreads = 2
	s := sim.New(4, 1)
	l := exec.NewSimLayer(s, simCosts())
	rt := New(l, o)
	d := rt.Device()
	eng := fault.New(s, plan)
	eng.Arm(fault.Handlers{CUOffline: d.OfflineCU})

	a, want := targetInput(1 << 14)
	k := targetSumKernel(d, a, 800)
	k.Chunk = 64
	var res device.Result
	_, err = l.Run(func(tc exec.TC) {
		var terr error
		res, terr = rt.Target(tc, []device.Map{device.MapTofrom(a)}, k)
		if terr != nil {
			t.Errorf("Target under cu-offline: %v", terr)
		}
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced != want {
		t.Errorf("reduced %v under cu-offline, want %v", res.Reduced, want)
	}
	if res.Redealt == 0 {
		t.Error("fault plan injected no re-deal (offline time missed the kernel)")
	}
	if eng.Injected[fault.CUOffline] != 1 {
		t.Errorf("injected %d cu-offline faults, want 1", eng.Injected[fault.CUOffline])
	}
	if d.OnlineCUs() != 3 {
		t.Errorf("OnlineCUs = %d, want 3", d.OnlineCUs())
	}
}

// TestOffloadAllCUsLostDegrades: a plan that kills every CU makes the
// target region return ErrDeviceLost — composed faults degrade, never
// hang.
func TestOffloadAllCUsLostDegrades(t *testing.T) {
	plan, err := fault.Parse("cu-offline@100us:0;cu-offline@150us:1")
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(4, 1)
	l := exec.NewSimLayer(s, simCosts())
	rt := New(l, Options{MaxThreads: 2, Resilient: true, DeviceCUs: 2, DeviceLanes: 4})
	d := rt.Device()
	eng := fault.New(s, plan)
	eng.Arm(fault.Handlers{CUOffline: d.OfflineCU})

	a, _ := targetInput(1 << 14)
	k := targetSumKernel(d, a, 800)
	k.Chunk = 64
	_, err = l.Run(func(tc exec.TC) {
		_, terr := rt.Target(tc, []device.Map{device.MapTofrom(a)}, k)
		if terr != device.ErrDeviceLost {
			t.Errorf("Target = %v, want ErrDeviceLost", terr)
		}
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
}
