package omp

import (
	"testing"

	"github.com/interweaving/komp/internal/exec"
)

func TestCLDequeLIFOOwnerFIFOThief(t *testing.T) {
	layer := exec.NewRealLayer(1)
	if _, err := layer.Run(func(tc exec.TC) {
		d := newCLDeque()
		a, b, c := &task{}, &task{}, &task{}
		d.push(tc, a)
		d.push(tc, b)
		d.push(tc, c)
		if d.size() != 3 {
			t.Errorf("size = %d, want 3", d.size())
		}
		if got := d.steal(tc); got != a {
			t.Errorf("thief must take the oldest task")
		}
		if got := d.pop(tc); got != c {
			t.Errorf("owner must take the newest task")
		}
		if got := d.pop(tc); got != b {
			t.Errorf("pop #2 = %p, want %p", got, b)
		}
		if d.pop(tc) != nil || d.steal(tc) != nil || d.size() != 0 {
			t.Error("drained deque must be empty for owner and thief alike")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCLDequeGrowsPastInitialCapacity(t *testing.T) {
	layer := exec.NewRealLayer(1)
	if _, err := layer.Run(func(tc exec.TC) {
		d := newCLDeque()
		n := clInitialCap*2 + 3
		tasks := make([]*task, n)
		for i := range tasks {
			tasks[i] = &task{}
			d.push(tc, tasks[i])
		}
		if d.size() != n {
			t.Fatalf("size = %d, want %d", d.size(), n)
		}
		for i := n - 1; i >= 0; i-- {
			if got := d.pop(tc); got != tasks[i] {
				t.Fatalf("pop %d returned the wrong task", i)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCLDequePushPopZeroAlloc(t *testing.T) {
	// The owner's steady-state push/pop must not allocate: past the
	// initial ring, the hot path is two index updates and a slot store.
	layer := exec.NewRealLayer(1)
	if _, err := layer.Run(func(tc exec.TC) {
		d := newCLDeque()
		tk := &task{}
		// Warm up the ring and the contention bookkeeping once.
		d.push(tc, tk)
		d.pop(tc)
		allocs := testing.AllocsPerRun(200, func() {
			d.push(tc, tk)
			d.push(tc, tk)
			if d.pop(tc) == nil || d.pop(tc) == nil {
				t.Fatal("pop lost a task")
			}
		})
		if allocs != 0 {
			t.Errorf("push/pop allocated %.1f times per run, want 0", allocs)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCLDequePushPop(b *testing.B) {
	layer := exec.NewRealLayer(1)
	if _, err := layer.Run(func(tc exec.TC) {
		d := newCLDeque()
		tk := &task{}
		d.push(tc, tk)
		d.pop(tc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.push(tc, tk)
			d.pop(tc)
		}
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMutexDequePushPop(b *testing.B) {
	layer := exec.NewRealLayer(1)
	if _, err := layer.Run(func(tc exec.TC) {
		d := &mutexDeque{}
		tk := &task{}
		d.push(tc, tk)
		d.pop(tc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.push(tc, tk)
			d.pop(tc)
		}
	}); err != nil {
		b.Fatal(err)
	}
}
