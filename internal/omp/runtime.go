// Package omp is the OpenMP run-time system of this repository — the
// libomp analogue. It implements parallel regions over a persistent
// ("hot") thread pool, worksharing loops with static, dynamic and guided
// schedules, barriers, critical sections, atomics, reductions, single /
// master constructs, ordered sections, locks, and a task subsystem with
// per-thread deques and work stealing.
//
// The runtime is written entirely against the exec layer, so identical
// runtime code runs in every environment — which is precisely the
// property the paper's RTK and PIK paths preserve for libomp ("identical
// object code is created for a user-level and kernel-level program",
// §2.1).
package omp

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/interweaving/komp/internal/device"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/places"
	"github.com/interweaving/komp/internal/pthread"
	"github.com/interweaving/komp/internal/trace"
)

// Schedule is an OpenMP loop schedule kind.
type Schedule int

// Schedule kinds.
const (
	Static Schedule = iota
	Dynamic
	Guided
	// Affinity is the locality-aware static schedule: the block partition
	// is keyed on each worker's rank in place (CPU) order rather than its
	// thread id, so repeated loops over the same range keep the same
	// chunk→CPU mapping whatever permutation the binding policy dealt the
	// thread numbers — first-touched pages stay local on later passes.
	// Without a managed binding it degenerates to plain static.
	Affinity
)

func (s Schedule) String() string {
	switch s {
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case Affinity:
		return "affinity"
	default:
		return "static"
	}
}

// ParseSchedule parses an OMP_SCHEDULE-style string like "dynamic,4".
func ParseSchedule(s string) (Schedule, int, error) {
	parts := strings.SplitN(strings.TrimSpace(strings.ToLower(s)), ",", 2)
	var kind Schedule
	switch parts[0] {
	case "static":
		kind = Static
	case "dynamic":
		kind = Dynamic
	case "guided":
		kind = Guided
	case "affinity":
		kind = Affinity
	default:
		return 0, 0, fmt.Errorf("omp: unknown schedule %q", parts[0])
	}
	chunk := 0
	if len(parts) == 2 {
		n, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return 0, 0, fmt.Errorf("omp: bad chunk in %q: %v", s, err)
		}
		chunk = n
	}
	return kind, chunk, nil
}

// BarrierAlgo selects the team barrier's arrival and release algorithm.
type BarrierAlgo int

// Barrier algorithms.
const (
	// BarrierHier (the default): arrival ascends a fanout-k combining
	// tree of per-node counters, so a barrier costs O(log n) serialized
	// cache-line transfers instead of n bounces on one central line, and
	// the release fans out through the same tree. This is the algorithm
	// hierarchical machines want (Thibault et al.), and reductions fuse
	// their combine into the arrival tree.
	BarrierHier BarrierAlgo = iota
	// BarrierFlat: one central arrival counter, and the last arriver
	// wakes every waiter (libomp's plain barrier; both the arrival and
	// the wake storm serialize).
	BarrierFlat
	// BarrierTree: flat central-counter arrival, but released threads
	// fan the wakes out with a bounded fanout — O(n) arrival, O(log n)
	// release.
	BarrierTree
)

func (b BarrierAlgo) String() string {
	switch b {
	case BarrierFlat:
		return "flat"
	case BarrierTree:
		return "tree"
	default:
		return "hier"
	}
}

// ParseBarrierAlgo parses a KOMP_BARRIER_ALGO-style string.
func ParseBarrierAlgo(s string) (BarrierAlgo, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "hier", "hierarchical":
		return BarrierHier, nil
	case "flat":
		return BarrierFlat, nil
	case "tree":
		return BarrierTree, nil
	}
	return 0, fmt.Errorf("omp: unknown barrier algorithm %q", s)
}

// StealOrder selects the order a thief sweeps victims in.
type StealOrder int

// Steal sweep orders.
const (
	// StealAuto (the default): nearest-first when the team has a managed
	// placement, round-robin otherwise.
	StealAuto StealOrder = iota
	// StealNear probes victims nearest-socket-first — same place, then
	// same socket, then remote by increasing NUMA distance — rotating
	// within each ring, so steals stay local while local work exists.
	StealNear
	// StealRR is the flat round-robin sweep (the pre-places behavior).
	StealRR
)

func (s StealOrder) String() string {
	switch s {
	case StealNear:
		return "near"
	case StealRR:
		return "rr"
	default:
		return "auto"
	}
}

// ParseStealOrder parses a KOMP_STEAL_ORDER-style string.
func ParseStealOrder(s string) (StealOrder, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "auto":
		return StealAuto, nil
	case "near", "nearest":
		return StealNear, nil
	case "rr", "round-robin":
		return StealRR, nil
	}
	return 0, fmt.Errorf("omp: unknown steal order %q", s)
}

// NestedPoolPolicy selects what an inner team does with its worker
// lease at the join (KOMP_NESTED_POOL).
type NestedPoolPolicy int

// Nested lease policies.
const (
	// NestedPoolHold (the default): the forking worker keeps its inner
	// team hot across regions — the nested analogue of the top-level hot
	// team. Repeated inner regions of the same size fork with zero
	// construction cost; the lease returns when the enclosing team is
	// released.
	NestedPoolHold NestedPoolPolicy = iota
	// NestedPoolReturn: the lease goes back to the pool at every inner
	// join and no inner team is cached. Repeated inner regions pay
	// reconstruction, but siblings forked at different times can share
	// the same pool workers.
	NestedPoolReturn
)

func (p NestedPoolPolicy) String() string {
	if p == NestedPoolReturn {
		return "return"
	}
	return "hold"
}

// ParseNestedPool parses a KOMP_NESTED_POOL-style string.
func ParseNestedPool(s string) (NestedPoolPolicy, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "hold":
		return NestedPoolHold, nil
	case "return":
		return NestedPoolReturn, nil
	}
	return 0, fmt.Errorf("omp: unknown nested pool policy %q (want hold or return)", s)
}

// Options configures the runtime (the internal control variables).
type Options struct {
	// MaxThreads caps the pool; 0 means the layer's CPU count.
	MaxThreads int
	// DefaultThreads is the team size when Parallel is called with 0;
	// 0 means MaxThreads (OMP_NUM_THREADS).
	DefaultThreads int
	// NumThreadsList is the per-level team-size list of a comma-list
	// OMP_NUM_THREADS ("8,4"): entry i sizes regions at nesting level
	// i+1, the last entry covering all deeper levels. Empty means
	// DefaultThreads at every level.
	NumThreadsList []int
	// MaxActiveLevels caps how many nested parallel regions may be
	// active (team size > 1) at once — OMP_MAX_ACTIVE_LEVELS. Regions
	// forked past the cap serialize. 0 means 1: nested regions
	// serialize, the OpenMP 5.x default and this runtime's historic
	// behavior.
	MaxActiveLevels int
	// NestedPool is the inner-team lease policy (KOMP_NESTED_POOL).
	NestedPool NestedPoolPolicy
	// HotTeamsMax bounds each nesting site's hot-team cache
	// (KOMP_HOT_TEAMS_MAX; default 8): at most this many idle teams —
	// and their worker leases — stay parked per site, LRU-evicted
	// beyond it, so team-size churn reaches a steady state instead of
	// accumulating a lease per size forever.
	HotTeamsMax int
	// Schedule and Chunk are the defaults for runtime-scheduled loops
	// (OMP_SCHEDULE).
	Schedule Schedule
	Chunk    int
	// Bind pins workers to CPUs (the legacy flag; OMP_PROC_BIND=true).
	// When ProcBind is BindDefault it maps to close binding over the
	// Places partition, which reproduces the historic worker-i-on-CPU-i
	// placement while the team fits the machine; when the team does not
	// fit, workers pack ceil(threads/places) per place and each stacked
	// worker is surfaced with a ThreadBind event whose Arg1 > 0 (the
	// oversubscription signal — the old modulo wrap stacked silently).
	// HPC runs bind.
	Bind bool
	// Places is the place partition binding resolves against. nil means
	// PlacesSpec (or its default, one place per core) parsed over a flat
	// view of the layer's CPUs; environments with a machine model pass a
	// topology-aware partition instead.
	Places *places.Partition
	// PlacesSpec is an OMP_PLACES-style specification — abstract names
	// threads|cores|sockets with an optional (n) count, or explicit
	// {lo[:len[:stride]]} interval lists — parsed by New when Places is
	// nil. Invalid specs panic at New; Env pre-validates the grammar so
	// environment-driven configs fail with an error instead.
	PlacesSpec string
	// ProcBind is the OMP_PROC_BIND policy: master, close or spread place
	// the team's workers; false leaves them unmanaged and (on the
	// simulated layer) deterministically migrating between regions the
	// way unbound threads drift under a general-purpose scheduler.
	// BindDefault defers to the legacy Bind flag.
	ProcBind places.Bind
	// ProcBindList is the per-level binding list of a comma-nested
	// OMP_PROC_BIND ("spread,close"): entry i binds teams at nesting
	// level i+1, the last entry covering all deeper levels (an inner
	// team subpartitions its master's place). Empty means ProcBind at
	// every level.
	ProcBindList []places.Bind
	// StealOrder selects the task-steal victim sweep order
	// (KOMP_STEAL_ORDER; default nearest-first when placed).
	StealOrder StealOrder
	// PthreadImpl selects the pthread layer variant beneath the runtime
	// (NPTL for Linux/PIK, PTE or Custom for RTK).
	PthreadImpl pthread.Impl
	// ForkChargeNS is the dispatching-side setup cost per forked worker
	// (work-descriptor writes, cache line pushes).
	ForkChargeNS int64
	// BarrierAlgo selects the barrier arrival/release algorithm
	// (default hierarchical).
	BarrierAlgo BarrierAlgo
	// BarrierFanout is the arity of the barrier arrival/release trees
	// (KOMP_BARRIER_FANOUT; default 4, libomp's branching factor).
	BarrierFanout int
	// ForkFanout is the arity of the fork tree: the master wakes only
	// its ForkFanout children in Parallel and woken workers forward the
	// remaining dispatches (KOMP_FORK_FANOUT; default 4).
	ForkFanout int
	// TaskDeque selects the per-worker task deque algorithm
	// (KOMP_TASK_DEQUE; default Chase–Lev).
	TaskDeque TaskDequeAlgo
	// TaskCutoff is the queue-depth cutoff: a thread whose own deque
	// already holds this many ready tasks executes further tasks
	// undeferred instead of deferring them (KOMP_TASK_CUTOFF; 0, the
	// default, disables the throttle).
	TaskCutoff int
	// TaskStealTries bounds how many victims one steal sweep probes
	// (the steal fanout). 0, the default, probes every teammate.
	TaskStealTries int
	// Resilient enables team shrink: when a CPU is taken offline
	// (OfflineCPU), its worker leaves the team at the next safe point and
	// the region completes on the survivors. Static loops degrade to
	// shared-counter chunk claiming so every iteration still runs exactly
	// once. Requires Bind (offline is identified by CPU).
	Resilient bool
	// Cancellation enables the cancel constructs (the OMP_CANCELLATION
	// ICV): Cancel/CancellationPoint become operative and every
	// scheduling point checks the team's cancel flags. Off (the
	// default), Cancel returns false, CancellationPoint costs one
	// branch, and the runtime is bit-identical to one built without the
	// subsystem.
	Cancellation bool
	// CancelProp selects how cancel bits reach polling workers
	// (KOMP_CANCEL_PROP): flat — one central word all n observers miss
	// on, O(n) to the last observer — or tree, riding the fanout-k
	// barrier tree for O(fanout·log n). Auto (default) picks tree
	// whenever the hierarchical barrier is in use.
	CancelProp CancelProp
	// RegionDeadlineNS arms a deadline on every parallel region
	// (KOMP_REGION_DEADLINE): a region still running that many
	// nanoseconds after its fork is cancelled as if a thread executed
	// Cancel(CancelParallel). Virtual time on the simulator, wall clock
	// on the real layer; 0 disables. Requires Cancellation.
	RegionDeadlineNS int64
	// SharedPool, if non-nil, makes the runtime lease its workers from
	// an externally owned pool shared with other runtimes — the
	// multi-tenant service (internal/tenancy) — instead of creating its
	// own. Close releases the runtime's cached leases but leaves the
	// pool running; Pool.Shutdown stops it.
	SharedPool *Pool
	// Tenant is the runtime's tenant id on a shared pool, stamped on
	// every instrumentation event the runtime emits (ompt.Event.Tenant)
	// so one spine can demultiplex the streams of all tenants. 0 — the
	// single-owner default — means "not a tenant".
	Tenant int32
	// DefaultDevice is the OMP_DEFAULT_DEVICE ICV: the device number
	// target constructs offload to. The runtime models one device
	// (number 0, the default); a negative value selects the host
	// fallback — target regions execute on the encountering thread.
	DefaultDevice int
	// DeviceCUs and DeviceLanes set the accelerator geometry when the
	// runtime builds its own device (KOMP_DEVICE=cus,lanes; default
	// 8 CUs × 32 lanes), and DeviceMemBytes its memory capacity
	// (KOMP_DEVICE_MEM). Ignored when Device injects an instance.
	DeviceCUs, DeviceLanes int
	DeviceMemBytes         int64
	// Device, if non-nil, is the accelerator instance target constructs
	// offload to — the simulated environments build one per machine
	// model so the OpenMP and CCK pipelines share a map table.
	Device *device.Dev
	// Spine, if non-nil, receives every instrumentation event the
	// runtime emits (package ompt). Consumers must be registered before
	// the first Parallel; a nil spine costs one mask test per emit site.
	Spine *ompt.Spine
	// Tracer, if non-nil, records parallel regions, worksharing loops
	// and barriers as Chrome trace events. It is implemented as a spine
	// consumer: New attaches it to Spine (creating one if needed).
	Tracer *trace.Tracer
	// Warnings collects non-fatal configuration diagnostics Env found —
	// e.g. an OMP_PROC_BIND list with more levels than
	// OMP_MAX_ACTIVE_LEVELS allows to ever apply. Callers surface them
	// however their environment reports (stderr, kernel log).
	Warnings []string
}

// Env reads OpenMP environment variables ("OMP_NUM_THREADS",
// "OMP_SCHEDULE") from a lookup function (kernel env vars in RTK, the
// emulated process environment in PIK) into Options.
func (o *Options) Env(lookup func(string) (string, bool)) error {
	if v, ok := lookup("OMP_NUM_THREADS"); ok {
		parts := strings.Split(v, ",")
		if len(parts) == 1 {
			// Single value: historic semantics (any integer accepted;
			// New clamps non-positive values to the default).
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				return fmt.Errorf("omp: OMP_NUM_THREADS=%q: %v", v, err)
			}
			o.DefaultThreads = n
		} else {
			// Comma list: per-nesting-level team sizes, every entry a
			// positive integer (OpenMP 5.x nesting form).
			list := make([]int, len(parts))
			for i, p := range parts {
				n, err := strconv.Atoi(strings.TrimSpace(p))
				if err != nil || n < 1 {
					return fmt.Errorf("omp: OMP_NUM_THREADS=%q: entry %d: want a positive integer", v, i+1)
				}
				list[i] = n
			}
			o.DefaultThreads, o.NumThreadsList = list[0], list
		}
	}
	if v, ok := lookup("OMP_MAX_ACTIVE_LEVELS"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 1 {
			return fmt.Errorf("omp: OMP_MAX_ACTIVE_LEVELS=%q: want a positive integer", v)
		}
		o.MaxActiveLevels = n
	}
	if v, ok := lookup("KOMP_NESTED_POOL"); ok {
		p, err := ParseNestedPool(v)
		if err != nil {
			return err
		}
		o.NestedPool = p
	}
	if v, ok := lookup("KOMP_HOT_TEAMS_MAX"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 1 {
			return fmt.Errorf("omp: KOMP_HOT_TEAMS_MAX=%q: want a positive integer", v)
		}
		o.HotTeamsMax = n
	}
	if v, ok := lookup("OMP_SCHEDULE"); ok {
		kind, chunk, err := ParseSchedule(v)
		if err != nil {
			return err
		}
		o.Schedule, o.Chunk = kind, chunk
	}
	if v, ok := lookup("KOMP_BARRIER_ALGO"); ok {
		algo, err := ParseBarrierAlgo(v)
		if err != nil {
			return err
		}
		o.BarrierAlgo = algo
	}
	if v, ok := lookup("KOMP_BARRIER_FANOUT"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 2 {
			return fmt.Errorf("omp: KOMP_BARRIER_FANOUT=%q: want an integer >= 2", v)
		}
		o.BarrierFanout = n
	}
	if v, ok := lookup("KOMP_FORK_FANOUT"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 1 {
			return fmt.Errorf("omp: KOMP_FORK_FANOUT=%q: want a positive integer", v)
		}
		o.ForkFanout = n
	}
	if v, ok := lookup("KOMP_TASK_DEQUE"); ok {
		algo, ok := ParseTaskDequeAlgo(strings.TrimSpace(strings.ToLower(v)))
		if !ok {
			return fmt.Errorf("omp: KOMP_TASK_DEQUE=%q: want chase-lev or mutex", v)
		}
		o.TaskDeque = algo
	}
	if v, ok := lookup("KOMP_TASK_CUTOFF"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 0 {
			return fmt.Errorf("omp: KOMP_TASK_CUTOFF=%q: want a non-negative integer", v)
		}
		o.TaskCutoff = n
	}
	if v, ok := lookup("KOMP_TASK_STEAL_TRIES"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 0 {
			return fmt.Errorf("omp: KOMP_TASK_STEAL_TRIES=%q: want a non-negative integer", v)
		}
		o.TaskStealTries = n
	}
	if v, ok := lookup("OMP_PLACES"); ok {
		// The real topology is not known until New; validate the grammar
		// here against an effectively unbounded flat topology so spec
		// errors surface as errors, not as a panic later.
		if _, err := places.Parse(v, places.Flat(1<<20)); err != nil {
			return fmt.Errorf("omp: OMP_PLACES=%q: %v", v, err)
		}
		o.PlacesSpec = v
	}
	if v, ok := lookup("OMP_PROC_BIND"); ok {
		list, err := places.ParseBindList(v)
		if err != nil {
			return fmt.Errorf("omp: OMP_PROC_BIND=%q: %v", v, err)
		}
		o.ProcBind = list[0]
		if len(list) > 1 {
			o.ProcBindList = list
		}
		if list[0] != places.BindFalse {
			o.Bind = true
		}
	}
	if v, ok := lookup("KOMP_STEAL_ORDER"); ok {
		so, err := ParseStealOrder(v)
		if err != nil {
			return fmt.Errorf("omp: KOMP_STEAL_ORDER=%q: %v", v, err)
		}
		o.StealOrder = so
	}
	if v, ok := lookup("OMP_CANCELLATION"); ok {
		b, err := strconv.ParseBool(strings.TrimSpace(strings.ToLower(v)))
		if err != nil {
			return fmt.Errorf("omp: OMP_CANCELLATION=%q: want true or false", v)
		}
		o.Cancellation = b
	}
	if v, ok := lookup("KOMP_CANCEL_PROP"); ok {
		cp, err := ParseCancelProp(v)
		if err != nil {
			return err
		}
		o.CancelProp = cp
	}
	if v, ok := lookup("KOMP_RESILIENT"); ok {
		b, err := strconv.ParseBool(strings.TrimSpace(strings.ToLower(v)))
		if err != nil {
			return fmt.Errorf("omp: KOMP_RESILIENT=%q: want true or false", v)
		}
		o.Resilient = b
	}
	if v, ok := lookup("OMP_DEFAULT_DEVICE"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return fmt.Errorf("omp: OMP_DEFAULT_DEVICE=%q: want an integer (negative for host fallback)", v)
		}
		o.DefaultDevice = n
	}
	if v, ok := lookup("KOMP_DEVICE"); ok {
		cus, lanes, err := parseDeviceGeometry(v)
		if err != nil {
			return err
		}
		o.DeviceCUs, o.DeviceLanes = cus, lanes
	}
	if v, ok := lookup("KOMP_DEVICE_MEM"); ok {
		b, err := parseBytes(v)
		if err != nil {
			return fmt.Errorf("omp: KOMP_DEVICE_MEM=%q: want bytes with an optional k/m/g suffix", v)
		}
		o.DeviceMemBytes = b
	}
	if v, ok := lookup("KOMP_REGION_DEADLINE"); ok {
		d, err := time.ParseDuration(strings.TrimSpace(v))
		if err != nil || d < 0 {
			return fmt.Errorf("omp: KOMP_REGION_DEADLINE=%q: want a non-negative duration (e.g. 50ms)", v)
		}
		o.RegionDeadlineNS = int64(d)
	}
	// Cross-variable diagnostic: a per-level OMP_PROC_BIND list reaching
	// past the active-level cap used to be silently ignored — surface it.
	maxLvl := o.MaxActiveLevels
	if maxLvl <= 0 {
		maxLvl = 1
	}
	if len(o.ProcBindList) > maxLvl {
		o.Warnings = append(o.Warnings, fmt.Sprintf(
			"omp: OMP_PROC_BIND lists %d levels but OMP_MAX_ACTIVE_LEVELS=%d: entries past level %d will never apply",
			len(o.ProcBindList), maxLvl, maxLvl))
	}
	return nil
}

// Runtime is an OpenMP runtime instance.
type Runtime struct {
	layer exec.Layer
	lib   *pthread.Lib
	opts  Options

	// pool is set once by ensurePool — either a pool this runtime owns
	// or the tenancy service's shared one — and read lock-free after
	// that; poolMu serializes concurrent first forks.
	pool   atomic.Pointer[pool]
	poolMu sync.Mutex

	// hot and serial are the top-level hot-team caches: the teams recent
	// non-nested Parallels ran on, claimed (removed) for the duration of
	// each region and parked back at the join, reused when a next region
	// is compatible (nested regions cache theirs on the forking Worker —
	// hotChild/serialChild). Reuse keeps the repeated-region fork path
	// allocation-free; the claim-then-park protocol keeps concurrent
	// Parallel calls on one runtime from ever sharing a team.
	hot    *hotCache
	serial atomic.Pointer[Team]

	spine *ompt.Spine

	// dev is the lazily initialized accelerator (see Device); devMu
	// serializes the first construction.
	dev   atomic.Pointer[device.Dev]
	devMu sync.Mutex

	critMu   sync.Mutex
	critical map[string]*critEntry

	// lockSeq, taskSeq and groupSeq hand out lock, explicit-task and
	// taskgroup ids for the spine's Obj field.
	lockSeq  atomic.Uint64
	taskSeq  atomic.Uint64
	groupSeq atomic.Uint64

	// teamBuilds counts Team constructions (a test hook: steady-state
	// forks on a warm cache must not build new teams).
	teamBuilds atomic.Int64

	// Stats.
	Regions      atomic.Int64
	TasksRun     atomic.Int64
	TaskSteals   atomic.Int64
	TaskDepEdges atomic.Int64
	TaskCutoffs  atomic.Int64
	// LocalSteals / RemoteSteals split TaskSteals by whether thief and
	// victim sat on the same socket (only counted when the team has a
	// managed placement).
	LocalSteals  atomic.Int64
	RemoteSteals atomic.Int64
}

// critEntry pairs a named critical section's mutex with its spine id.
type critEntry struct {
	m  *pthread.Mutex
	id uint64
}

// New creates a runtime over an execution layer.
func New(layer exec.Layer, opts Options) *Runtime {
	if opts.MaxThreads <= 0 {
		opts.MaxThreads = layer.NumCPUs()
	}
	if opts.DefaultThreads <= 0 || opts.DefaultThreads > opts.MaxThreads {
		opts.DefaultThreads = opts.MaxThreads
	}
	if opts.MaxActiveLevels < 1 {
		opts.MaxActiveLevels = 1 // nested regions serialize by default
	}
	if opts.ForkChargeNS == 0 {
		opts.ForkChargeNS = 120
	}
	if opts.BarrierFanout < 2 {
		opts.BarrierFanout = 4
	}
	if opts.ForkFanout < 1 {
		opts.ForkFanout = 4
	}
	if opts.HotTeamsMax < 1 {
		opts.HotTeamsMax = 8
	}
	if opts.Places == nil {
		p, err := places.Parse(opts.PlacesSpec, places.Flat(layer.NumCPUs()))
		if err != nil {
			// Env pre-validates the grammar; only a spec naming CPUs the
			// layer does not have reaches here, which is a configuration
			// bug, not a runtime condition.
			panic(fmt.Sprintf("omp: invalid places spec: %v", err))
		}
		opts.Places = p
	}
	if opts.Tracer != nil {
		// The tracer is just the first spine consumer: give it a spine
		// to listen on if the caller did not provide one.
		if opts.Spine == nil {
			opts.Spine = ompt.NewSpine()
		}
		trace.Attach(opts.Tracer, opts.Spine)
	}
	return &Runtime{
		layer:    layer,
		lib:      pthread.New(layer, opts.PthreadImpl),
		opts:     opts,
		hot:      newHotCache(opts.HotTeamsMax),
		spine:    opts.Spine,
		critical: make(map[string]*critEntry),
	}
}

// Spine returns the runtime's instrumentation spine (nil when disabled).
func (rt *Runtime) Spine() *ompt.Spine { return rt.spine }

// Places returns the runtime's place partition.
func (rt *Runtime) Places() *places.Partition { return rt.opts.Places }

// procBind resolves the effective binding policy: an explicit ProcBind
// wins; BindDefault maps the legacy Bind flag to close binding (which
// reproduces the historic worker-i-on-CPU-i placement while the team
// fits) or to fully unmanaged workers.
func (rt *Runtime) procBind() places.Bind {
	if b := rt.opts.ProcBind; b != places.BindDefault {
		return b
	}
	if rt.opts.Bind {
		return places.BindClose
	}
	return places.BindDefault // unmanaged: the legacy unbound path
}

// threadsAt resolves the team-size ICV for a region at nesting level
// level (1-based): the matching OMP_NUM_THREADS list entry — the last
// entry covering all deeper levels — or DefaultThreads without a list.
func (rt *Runtime) threadsAt(level int) int {
	if list := rt.opts.NumThreadsList; len(list) > 0 {
		i := level - 1
		if i >= len(list) {
			i = len(list) - 1
		}
		if n := list[i]; n > 0 {
			if n > rt.opts.MaxThreads {
				return rt.opts.MaxThreads
			}
			return n
		}
	}
	return rt.opts.DefaultThreads
}

// procBindAt resolves the binding policy for a team at nesting level
// level (1-based): the matching OMP_PROC_BIND list entry — the last
// entry covering all deeper levels — falling back to the flat policy
// without a list (or where the list says default).
func (rt *Runtime) procBindAt(level int) places.Bind {
	if list := rt.opts.ProcBindList; len(list) > 0 {
		i := level - 1
		if i >= len(list) {
			i = len(list) - 1
		}
		if b := list[i]; b != places.BindDefault {
			return b
		}
	}
	return rt.procBind()
}

// stealNear reports whether thieves should sweep victims nearest-first
// for a team with placement cpus (nil means unplaced).
func (rt *Runtime) stealNear(cpus []int) bool {
	switch rt.opts.StealOrder {
	case StealNear:
		return cpus != nil
	case StealRR:
		return false
	default:
		return cpus != nil
	}
}

// Layer returns the runtime's execution layer.
func (rt *Runtime) Layer() exec.Layer { return rt.layer }

// Lib returns the pthread library beneath the runtime.
func (rt *Runtime) Lib() *pthread.Lib { return rt.lib }

// MaxThreads returns the pool capacity.
func (rt *Runtime) MaxThreads() int { return rt.opts.MaxThreads }

// DefaultThreads returns the default team size.
func (rt *Runtime) DefaultThreads() int { return rt.opts.DefaultThreads }

// DefaultSchedule returns the runtime schedule ICV.
func (rt *Runtime) DefaultSchedule() (Schedule, int) { return rt.opts.Schedule, rt.opts.Chunk }

// Close shuts down the worker pool. It must be called before the layer's
// Run can return on the simulator (pool workers otherwise sleep forever).
// On a shared pool (Options.SharedPool) Close only releases this
// runtime's cached leases; the pool keeps running for the other tenants
// until Pool.Shutdown.
func (rt *Runtime) Close(tc exec.TC) {
	rt.ReleaseCachedTeams()
	if p := rt.pool.Load(); p != nil {
		if !p.shared {
			p.shutdown(tc)
		}
		rt.pool.Store(nil)
	}
}

// ReleaseCachedTeams drains every hot and serial team the runtime has
// parked — top-level caches and, recursively, the per-worker nested
// caches — returning their worker leases to the pool. The tenancy
// service calls it on idle tenants (the work-conserving rebalance).
// It is safe against the tenant's own concurrent Parallel calls: the
// caches are claim-based, so a team is either in a cache (drained and
// owned here) or claimed by a running region (invisible to the drain) —
// never both.
func (rt *Runtime) ReleaseCachedTeams() {
	for _, t := range rt.hot.drain() {
		rt.releaseTeam(t)
	}
	if t := rt.serial.Swap(nil); t != nil {
		rt.releaseTeam(t)
	}
}

// CachedTeams returns how many idle teams the top-level hot cache
// currently parks (a test hook for the eviction bound).
func (rt *Runtime) CachedTeams() int { return rt.hot.size() }

// TeamBuilds returns how many Team structures the runtime has built so
// far (a test hook: repeated regions on a warm cache must not grow it).
func (rt *Runtime) TeamBuilds() int64 { return rt.teamBuilds.Load() }

// OfflineCPU models CPU cpu going away mid-run: every pool worker bound
// to it is marked doomed and leaves its team at the next safe point (a
// barrier arrival or a loop chunk claim) — the team shrink path. It
// returns how many workers were doomed. Safe to call from a scheduler
// callback (e.g. a fault-plan event). Requires Bind (workers are
// identified by their bound CPU); the master thread's CPU cannot be
// taken offline. Combine with Options.Resilient so static loops degrade
// to exactly-once chunk claiming — without it a dead worker's static
// block is silently lost. Note that a doomed worker's private locals die
// with it: resilient region bodies should flush per-chunk results into
// shared state (Atomic, tasks) before each chunk body returns.
func (rt *Runtime) OfflineCPU(cpu int) int {
	p := rt.pool.Load()
	if p == nil {
		return 0
	}
	n := 0
	for _, pw := range p.workers {
		if pw.cpu == cpu && pw.dead.Load() == 0 && pw.doom.CompareAndSwap(0, 1) {
			n++
		}
	}
	return n
}

// criticalEntry returns the global mutex (and spine id) for a named
// critical section.
func (rt *Runtime) criticalEntry(name string) *critEntry {
	rt.critMu.Lock()
	defer rt.critMu.Unlock()
	e, ok := rt.critical[name]
	if !ok {
		e = &critEntry{m: rt.lib.NewMutex(), id: rt.lockSeq.Add(1)}
		rt.critical[name] = e
	}
	return e
}
