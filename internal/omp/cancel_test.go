package omp

import (
	"strings"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/sim"
)

func cancelOpts() Options {
	return Options{MaxThreads: 4, Bind: true, Cancellation: true}
}

// TestCancelDisabledIsNoop: with the OMP_CANCELLATION ICV off, Cancel
// reports failure and the construct runs to completion — the compiled
// pragma's contract (the cancel directive is ignored).
func TestCancelDisabledIsNoop(t *testing.T) {
	ran := make([]int, 4)
	shrinkRun(t, Options{MaxThreads: 4, Bind: true},
		nil,
		func(rt *Runtime, tc exec.TC) {
			rt.Parallel(tc, 4, func(w *Worker) {
				if w.Cancel(CancelParallel) {
					t.Error("Cancel succeeded with OMP_CANCELLATION off")
				}
				if w.CancellationPoint(CancelParallel) {
					t.Error("CancellationPoint fired with OMP_CANCELLATION off")
				}
				ran[w.ThreadNum()]++
			})
		})
	for id, n := range ran {
		if n != 1 {
			t.Fatalf("thread %d ran %d times, want 1", id, n)
		}
	}
}

// TestCancelParallelConverges: one thread cancels the parallel region;
// every thread observes it at a cancellation point, branches to the end
// of the region, and the region joins cleanly — under both propagation
// modes and all barrier algorithms.
func TestCancelParallelConverges(t *testing.T) {
	for _, prop := range []CancelProp{CancelPropFlat, CancelPropTree} {
		for _, algo := range []BarrierAlgo{BarrierFlat, BarrierHier} {
			opts := cancelOpts()
			opts.CancelProp = prop
			opts.BarrierAlgo = algo
			var exited [4]bool
			work := 0
			shrinkRun(t, opts, nil, func(rt *Runtime, tc exec.TC) {
				rt.Parallel(tc, 4, func(w *Worker) {
					if w.ThreadNum() == 1 {
						w.TC().Charge(100_000)
						if !w.Cancel(CancelParallel) {
							t.Error("Cancel(CancelParallel) = false with ICV on")
						}
						exited[1] = true
						return
					}
					for i := 0; ; i++ {
						if w.CancellationPoint(CancelParallel) {
							break
						}
						w.TC().Charge(10_000)
						w.Master(func() { work++ })
						if i > 1_000_000 {
							t.Fatal("cancellation never observed")
						}
					}
					exited[w.ThreadNum()] = true
				})
			})
			for id, ok := range exited {
				if !ok {
					t.Fatalf("prop=%v algo=%v: thread %d never exited", prop, algo, id)
				}
			}
			if work == 0 {
				t.Fatalf("prop=%v algo=%v: no partial work before the cancel", prop, algo)
			}
		}
	}
}

// TestCancelForStopsDispatch: cancelling a dynamic loop abandons its
// unclaimed chunks; the construct's closing barrier retires the request
// and the next loop over the same range runs in full.
func TestCancelForStopsDispatch(t *testing.T) {
	const iters = 400
	first, second := 0, 0
	shrinkRun(t, cancelOpts(), nil, func(rt *Runtime, tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			mine := 0
			w.ForEach(0, iters, ForOpt{Sched: Dynamic, Chunk: 1}, func(i int) {
				w.TC().Charge(10_000)
				mine++
				if w.ThreadNum() == 2 && mine == 5 {
					w.Cancel(CancelFor)
				}
			})
			w.Atomic(func() { first += mine })
			w.ForEach(0, iters, ForOpt{Sched: Dynamic, Chunk: 1}, func(i int) {
				w.TC().Charge(1_000)
				w.Atomic(func() { second++ })
			})
		})
	})
	if first >= iters {
		t.Fatalf("cancelled loop ran all %d iterations", first)
	}
	if first == 0 {
		t.Fatal("cancelled loop ran no iterations at all")
	}
	if second != iters {
		t.Fatalf("loop after the cancel ran %d iterations, want %d (bits not cleared?)", second, iters)
	}
}

// TestCancellationPointKinds: a loop cancel fires the for and not the
// sections point; a parallel cancel fires every kind.
func TestCancellationPointKinds(t *testing.T) {
	shrinkRun(t, cancelOpts(), nil, func(rt *Runtime, tc exec.TC) {
		rt.Parallel(tc, 2, func(w *Worker) {
			w.Master(func() {
				w.Cancel(CancelFor)
				if !w.CancellationPoint(CancelFor) {
					t.Error("for point missed a for cancel")
				}
				if w.CancellationPoint(CancelSections) {
					t.Error("sections point fired on a for cancel")
				}
				if w.CancellationPoint(CancelParallel) {
					t.Error("parallel point fired on a for cancel")
				}
			})
			w.Barrier() // retires the loop cancel
			w.Master(func() {
				if w.CancellationPoint(CancelFor) {
					t.Error("for cancel survived its closing barrier")
				}
				w.Cancel(CancelParallel)
				if !w.CancellationPoint(CancelFor) ||
					!w.CancellationPoint(CancelSections) ||
					!w.CancellationPoint(CancelParallel) {
					t.Error("parallel cancel must fire every cancellation point")
				}
			})
		})
	})
}

// TestCancelTaskgroupDiscards: cancelling a taskgroup discards the
// bodies of members that have not started, while the end-of-group wait
// still converges (drained, not dropped) and dependence chains release.
func TestCancelTaskgroupDiscards(t *testing.T) {
	const tasks = 64
	ran := 0
	shrinkRun(t, cancelOpts(), nil, func(rt *Runtime, tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Master(func() {
				w.Taskgroup(func(gw *Worker) {
					for i := 0; i < tasks; i++ {
						gw.Task(func(tw *Worker) {
							tw.TC().Charge(50_000)
							ran++ // single-threaded on sim: no race
							if ran == 3 {
								tw.Cancel(CancelTaskgroup)
							}
						})
					}
				})
			})
		})
	})
	if ran == 0 || ran >= tasks {
		t.Fatalf("cancelled taskgroup ran %d of %d bodies, want a partial count", ran, tasks)
	}
}

// TestTaskgroupPanicCancels: a panic in a member task cancels the group
// (remaining bodies discarded), accounting converges, and the panic
// value is re-raised at the taskgroup construct, not on the pool worker
// that ran the task.
func TestTaskgroupPanicCancels(t *testing.T) {
	const tasks = 32
	ran, caught := 0, false
	shrinkRun(t, cancelOpts(), nil, func(rt *Runtime, tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Master(func() {
				defer func() {
					if r := recover(); r != nil {
						if r != "boom" {
							t.Errorf("re-raised %v, want boom", r)
						}
						caught = true
					}
				}()
				w.Taskgroup(func(gw *Worker) {
					for i := 0; i < tasks; i++ {
						gw.Task(func(tw *Worker) {
							tw.TC().Charge(50_000)
							ran++
							if ran == 2 {
								panic("boom")
							}
						})
					}
				})
			})
		})
	})
	if !caught {
		t.Fatal("member-task panic was not re-raised at the taskgroup construct")
	}
	if ran >= tasks {
		t.Fatalf("panic did not cancel the group: %d of %d bodies ran", ran, tasks)
	}
}

// TestTaskgroupPanicUndisturbedWithoutICV: with cancellation off, a
// panicking task unwinds as before (the pre-cancellation contract —
// this test just pins that the new containment is gated on the ICV).
func TestTaskgroupPanicRuntimeStillUsable(t *testing.T) {
	ok := false
	shrinkRun(t, cancelOpts(), nil, func(rt *Runtime, tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Master(func() {
				func() {
					defer func() { recover() }()
					w.Taskgroup(func(gw *Worker) {
						gw.Task(func(*Worker) { panic("x") })
					})
				}()
			})
			w.Barrier()
		})
		// The pool must still run a clean region afterwards.
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Master(func() { ok = true })
			w.Barrier()
		})
	})
	if !ok {
		t.Fatal("runtime unusable after a contained taskgroup panic")
	}
}

// TestRegionDeadlineCancels: a region that overruns KOMP_REGION_DEADLINE
// is cancelled by the deadline alarm and joins with a partial result; a
// region that finishes in time is untouched and the stopped alarm leaves
// no trace on virtual time.
func TestRegionDeadlineCancels(t *testing.T) {
	opts := cancelOpts()
	opts.RegionDeadlineNS = 2_000_000
	done := 0
	shrinkRun(t, opts, nil, func(rt *Runtime, tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			for i := 0; i < 10_000; i++ {
				if w.CancellationPoint(CancelParallel) {
					return
				}
				w.TC().Charge(5_000)
				done++
			}
		})
	})
	// 4 workers × 5µs polls against a 2ms deadline: ~400 polls happen,
	// far short of the 40000 a full run would record.
	if done == 0 || done >= 40_000 {
		t.Fatalf("deadline-cancelled region recorded %d polls, want a partial count", done)
	}

	// In-time region: virtual time must match a no-deadline run exactly.
	run := func(deadlineNS int64) int64 {
		o := cancelOpts()
		o.RegionDeadlineNS = deadlineNS
		return shrinkRun(t, o, nil, func(rt *Runtime, tc exec.TC) {
			rt.Parallel(tc, 4, func(w *Worker) {
				w.TC().Charge(100_000)
			})
		})
	}
	if with, without := run(1_000_000_000), run(0); with != without {
		t.Fatalf("unfired deadline perturbed virtual time: %d vs %d ns", with, without)
	}
}

// TestCancelDeterministic: identical cancellable runs take identical
// virtual time (the ablation's byte-identical requirement).
func TestCancelDeterministic(t *testing.T) {
	one := func() int64 {
		opts := cancelOpts()
		opts.RegionDeadlineNS = 1_500_000
		return shrinkRun(t, opts, nil, func(rt *Runtime, tc exec.TC) {
			rt.Parallel(tc, 4, func(w *Worker) {
				for !w.CancellationPoint(CancelParallel) {
					w.TC().Charge(7_000)
				}
			})
		})
	}
	if a, b := one(), one(); a != b {
		t.Fatalf("same cancel plan diverged: %d vs %d virtual ns", a, b)
	}
}

// TestShrinkCancelSameBarrier is the shrink × cancel regression: a team
// that loses a worker to CPU offline while another worker cancels the
// region — both landing on the same join — must converge, with the
// LockCheck discipline clean.
func TestShrinkCancelSameBarrier(t *testing.T) {
	for _, prop := range []CancelProp{CancelPropFlat, CancelPropTree} {
		opts := cancelOpts()
		opts.Resilient = true
		opts.CancelProp = prop
		sp := ompt.NewSpine()
		lc := ompt.NewLockCheck(sp)
		opts.Spine = sp
		survivors := 0
		shrinkRun(t, opts,
			func(s *sim.Sim, rt *Runtime) {
				// The offline lands while the other threads are working
				// toward (or already parked at) the join.
				s.At(900_000, func() { rt.OfflineCPU(3) })
			},
			func(rt *Runtime, tc exec.TC) {
				rt.Parallel(tc, 4, func(w *Worker) {
					switch w.ThreadNum() {
					case 1:
						w.TC().Charge(800_000)
						w.Cancel(CancelParallel)
					case 3:
						// Mid-charge when doomed: the charge is atomic on the
						// simulator, so the body completes and the doom is
						// observed at the next scheduling point — the join,
						// where the removal and the cancel meet.
						w.TC().Charge(5_000_000)
					default:
						for !w.CancellationPoint(CancelParallel) {
							w.TC().Charge(10_000)
						}
					}
					survivors++
				})
			})
		if survivors != 4 {
			t.Fatalf("prop=%v: %d bodies finished the region, want 4", prop, survivors)
		}
		if v := lc.Violations(); len(v) != 0 {
			t.Fatalf("prop=%v: LockCheck: %s", prop, strings.Join(v, "; "))
		}
	}
}

// TestCancelRealLayer exercises the same protocol on real goroutines:
// cancellation during a dynamic loop, a taskgroup cancel, and a region
// deadline — with the LockCheck discipline clean. (The -race run of the
// test suite makes this the data-race regression for the cancel path.)
func TestCancelRealLayer(t *testing.T) {
	opts := Options{MaxThreads: 4, Bind: true, Cancellation: true}
	sp := ompt.NewSpine()
	lc := ompt.NewLockCheck(sp)
	opts.Spine = sp
	layer := exec.NewRealLayer(4)
	rt := New(layer, opts)
	var ran exec.Word
	if _, err := layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			w.ForEach(0, 10_000, ForOpt{Sched: Dynamic, Chunk: 1}, func(i int) {
				if ran.Add(1) == 50 {
					w.Cancel(CancelFor)
				}
			})
		})
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Master(func() {
				w.Taskgroup(func(gw *Worker) {
					for i := 0; i < 64; i++ {
						gw.Task(func(tw *Worker) {
							if tw.CancellationPoint(CancelTaskgroup) {
								return
							}
						})
					}
					gw.Cancel(CancelTaskgroup)
				})
			})
		})
		rt.Close(tc)
	}); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n < 50 || n >= 10_000 {
		t.Fatalf("cancelled loop ran %d iterations, want a partial count >= 50", n)
	}
	if v := lc.Violations(); len(v) != 0 {
		t.Fatalf("LockCheck: %s", strings.Join(v, "; "))
	}
}

// TestRealWatchdogFires pins the real-layer stall watchdog satellite: a
// run with no layer-level progress for the period gets a goroutine dump
// instead of hanging.
func TestRealWatchdogFires(t *testing.T) {
	layer := exec.NewRealLayer(2)
	fired := make(chan string, 1)
	layer.SetWatchdog(30_000_000, func(stacks string) { // 30ms
		select {
		case fired <- stacks:
		default:
		}
	})
	var gate exec.Word
	if _, err := layer.Run(func(tc exec.TC) {
		// Park past two watchdog periods with zero wakes in flight, then
		// self-release so the test run still terminates cleanly.
		h := tc.Spawn("releaser", 1, func(tc2 exec.TC) {
			tc2.Sleep(120_000_000)
			gate.Store(1)
			tc2.FutexWake(&gate, -1)
		})
		for gate.Load() == 0 {
			tc.FutexWait(&gate, 0)
		}
		h.Join(tc)
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case dump := <-fired:
		if !strings.Contains(dump, "goroutine") {
			t.Fatalf("watchdog report carries no goroutine dump: %q", dump[:min(len(dump), 80)])
		}
	default:
		t.Fatal("watchdog never fired across a 120ms stall with a 30ms period")
	}
}
