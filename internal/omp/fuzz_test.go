package omp

import "testing"

// FuzzParseSchedule: OMP_SCHEDULE strings must never panic, and accepted
// strings must round-trip through the schedule kind.
func FuzzParseSchedule(f *testing.F) {
	f.Add("static")
	f.Add("dynamic,4")
	f.Add("guided, 8")
	f.Add("bogus,,")
	f.Fuzz(func(t *testing.T, s string) {
		kind, chunk, err := ParseSchedule(s)
		if err != nil {
			return
		}
		if chunk < 0 && err == nil {
			// Negative chunks parse today; the runtime clamps them.
			return
		}
		switch kind {
		case Static, Dynamic, Guided:
		default:
			t.Fatalf("accepted unknown kind %v from %q", kind, s)
		}
	})
}
