package omp

import "github.com/interweaving/komp/internal/ompt"

// Emit helpers: every runtime emit site funnels through these, so the
// disabled-spine fast path is one nil check plus one mask test per site
// and the Event literal is only constructed when a consumer listens —
// the zero-alloc property the real-layer benchmark asserts.

// workKind maps a loop schedule to its spine work-construct kind.
func workKind(s Schedule) ompt.Work {
	switch s {
	case Dynamic:
		return ompt.WorkLoopDynamic
	case Guided:
		return ompt.WorkLoopGuided
	case Affinity:
		return ompt.WorkLoopAffinity
	}
	return ompt.WorkLoopStatic
}

// emitPlain emits a kind that needs no sync/work qualifier (implicit
// task begin/end, parallel end, team shrink).
func (w *Worker) emitPlain(k ompt.Kind, a0, a1 int64) {
	sp := w.team.rt.spine
	if !sp.Enabled(k) {
		return
	}
	sp.Emit(ompt.Event{Kind: k, Thread: int32(w.id), Gid: w.gid, CPU: int32(w.tc.CPU()),
		TimeNS: w.tc.Now(), Region: w.team.region, Level: int32(w.team.level), Tenant: w.team.rt.opts.Tenant, Arg0: a0, Arg1: a1})
}

// emitSync emits a synchronization event against object obj.
func (w *Worker) emitSync(k ompt.Kind, s ompt.Sync, obj uint64) {
	sp := w.team.rt.spine
	if !sp.Enabled(k) {
		return
	}
	sp.Emit(ompt.Event{Kind: k, Sync: s, Thread: int32(w.id), Gid: w.gid, CPU: int32(w.tc.CPU()),
		TimeNS: w.tc.Now(), Region: w.team.region, Level: int32(w.team.level), Tenant: w.team.rt.opts.Tenant, Obj: obj})
}

// emitWork emits a worksharing event: wk is the construct kind, obj the
// per-thread construct sequence, a0/a1 the bounds (or chunk bounds).
func (w *Worker) emitWork(k ompt.Kind, wk ompt.Work, obj uint64, a0, a1 int64) {
	sp := w.team.rt.spine
	if !sp.Enabled(k) {
		return
	}
	sp.Emit(ompt.Event{Kind: k, Work: wk, Thread: int32(w.id), Gid: w.gid, CPU: int32(w.tc.CPU()),
		TimeNS: w.tc.Now(), Region: w.team.region, Level: int32(w.team.level), Tenant: w.team.rt.opts.Tenant, Obj: obj, Arg0: a0, Arg1: a1})
}

// emitBind publishes a worker's placement for the region: Obj is the
// assigned CPU, Arg0 the place index (-1 for a proc_bind(false)
// migration, which lands on CPUs, not places), and Arg1 the number of
// lower-numbered teammates bound to the same CPU — nonzero Arg1 is the
// oversubscription signal.
func (w *Worker) emitBind(cpu int) {
	sp := w.team.rt.spine
	if !sp.Enabled(ompt.ThreadBind) {
		return
	}
	place, occ := int64(-1), int64(0)
	if cpus := w.team.cpus; cpus != nil {
		place = int64(w.team.rt.opts.Places.PlaceOf(cpu))
		for j := 0; j < w.id; j++ {
			if cpus[j] == cpu {
				occ++
			}
		}
	}
	sp.Emit(ompt.Event{Kind: ompt.ThreadBind, Thread: int32(w.id), Gid: w.gid, CPU: int32(cpu),
		TimeNS: w.tc.Now(), Region: w.team.region, Level: int32(w.team.level), Tenant: w.team.rt.opts.Tenant, Obj: uint64(cpu), Arg0: place, Arg1: occ})
}

// emitCancel emits a cancellation event: Arg0 is the CancelKind, obj
// the taskgroup or task id (0 for team-level kinds), a1 distinguishes
// activation from a discarded task body (cancel.go's Arg1 constants).
func (w *Worker) emitCancel(kind CancelKind, obj uint64, a1 int64) {
	sp := w.team.rt.spine
	if !sp.Enabled(ompt.Cancel) {
		return
	}
	sp.Emit(ompt.Event{Kind: ompt.Cancel, Thread: int32(w.id), Gid: w.gid, CPU: int32(w.tc.CPU()),
		TimeNS: w.tc.Now(), Region: w.team.region, Level: int32(w.team.level), Tenant: w.team.rt.opts.Tenant, Obj: obj,
		Arg0: int64(kind), Arg1: a1})
}

// emitTask emits an explicit-task event against task id obj; a0 is
// kind-specific (victim thread for TaskSteal).
func (w *Worker) emitTask(k ompt.Kind, obj uint64, a0 int64) {
	sp := w.team.rt.spine
	if !sp.Enabled(k) {
		return
	}
	sp.Emit(ompt.Event{Kind: k, Thread: int32(w.id), Gid: w.gid, CPU: int32(w.tc.CPU()),
		TimeNS: w.tc.Now(), Region: w.team.region, Level: int32(w.team.level), Tenant: w.team.rt.opts.Tenant, Obj: obj, Arg0: a0})
}
