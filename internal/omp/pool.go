package omp

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/places"
	"github.com/interweaving/komp/internal/pthread"
)

// pool is the persistent worker pool: workers are created once and sleep
// on per-worker futex words between parallel regions, the way libomp
// keeps its team threads parked. Teams do not own the pool — they lease
// workers from it (lease/release), so several teams of a nesting
// hierarchy can hold disjoint worker sets at once, and — when the pool
// is shared — so can the teams of several independent runtimes (the
// multi-tenant service).
type pool struct {
	lib     *pthread.Lib
	workers []*poolWorker // by creation order; worker i has id i+1

	// shared marks a pool owned by a tenancy service rather than by one
	// runtime: Runtime.Close leaves it running (Pool.Shutdown stops it).
	shared bool

	// free is the lease allocator's free list, kept sorted by id so a
	// lease hands out the lowest ids first — for a full-size top-level
	// team this reproduces the historic slot-i ↔ pool-worker-(i-1)
	// mapping exactly. The mutex is uncontended on the simulator (one
	// proc runs at a time) and cheap on the real layer (leases happen at
	// team construction, never per region on the hot path).
	mu   sync.Mutex
	free []*poolWorker

	// starved latches a lease shortfall: a fork asked for more workers
	// than the free list held. The tenancy service polls it (takeStarved)
	// to trigger a work-conserving rebalance — idle tenants' cached
	// leases go back to the pool so a busy tenant's next fork gets them.
	starved exec.Word

	// doubleReleases counts releases of workers that were not leased —
	// the claim-path bug class the per-worker CAS guard exists to
	// contain. Always zero on a correct runtime; tests assert it.
	doubleReleases atomic.Int64
}

type poolWorker struct {
	id   int
	slot int       // team slot for the current lease (id when unleased)
	cpu  int       // pool-level binding (-1 when unbound)
	gate exec.Word // generation gate; master bumps it to dispatch
	team *Team     // assignment for the new generation
	stop exec.Word
	doom exec.Word // CPU taken offline: die at the next safe point
	dead exec.Word // worker thread has exited for good (offline death)
	// leased guards the claim path: 1 while some team's lease holds this
	// worker. lease/release transfer ownership with a CAS, so a worker
	// can never be handed to two teams even if a buggy caller
	// double-releases it — the failed CAS drops the duplicate instead of
	// duplicating the free-list entry.
	leased exec.Word
	// curCPU is the worker's current binding, encoded cpu+1 (0 when
	// unbound): unlike cpu it follows per-region re-pins, so a fault
	// injector can doom whatever is on a CPU right now (OfflineCurrent).
	curCPU exec.Word
	th     *pthread.Thread
}

// newPool creates nworkers pool workers with ids 1..nworkers; cpus, when
// non-nil, is indexed by worker id and gives each its pool-level binding.
func newPool(tc exec.TC, lib *pthread.Lib, nworkers int, cpus []int, shared bool) *pool {
	p := &pool{lib: lib, shared: shared}
	for i := 1; i <= nworkers; i++ {
		pw := &poolWorker{id: i, slot: i, cpu: -1}
		if cpus != nil {
			pw.cpu = cpus[i]
		}
		pw.curCPU.Store(uint32(pw.cpu + 1))
		pw.th = lib.Create(tc, pthread.Attr{CPU: pw.cpu}, func(wtc exec.TC) {
			p.workerLoop(wtc, pw)
		})
		p.workers = append(p.workers, pw)
	}
	p.free = append([]*poolWorker(nil), p.workers...)
	return p
}

func (rt *Runtime) ensurePool(tc exec.TC) *pool {
	if p := rt.pool.Load(); p != nil {
		return p
	}
	rt.poolMu.Lock()
	defer rt.poolMu.Unlock()
	if p := rt.pool.Load(); p != nil {
		return p
	}
	if sp := rt.opts.SharedPool; sp != nil {
		rt.pool.Store(sp.p)
		return sp.p
	}
	// Pool-level placement: under a managed binding the affinity
	// subsystem assigns each slot a CPU of its place (close over the
	// default per-core partition reproduces the historic worker-i-on-
	// CPU-i pinning while the pool fits the machine). Per-region
	// placement in workerLoop re-pins workers when a region's policy
	// assignment differs.
	var cpus []int
	if bind := rt.procBind(); bind != places.BindDefault && bind != places.BindFalse {
		cpus = rt.opts.Places.Assign(rt.opts.MaxThreads, bind, tc.CPU())
	}
	p := newPool(tc, rt.lib, rt.opts.MaxThreads-1, cpus, false)
	rt.pool.Store(p)
	return p
}

// lease takes up to k workers off the free list, lowest ids first, and
// claims each with a leased-word CAS — the allocator-level guarantee
// that no worker is ever held by two teams at once. Dead and doomed
// workers are leased like live ones: dispatchSlot removes them from the
// team at fork, which is the same per-region re-shrink the flat pool
// performed. A shortfall returns fewer than k (latching the starved
// flag) — the caller builds a smaller team.
func (p *pool) lease(k int) []*poolWorker {
	if k <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if k > len(p.free) {
		p.starved.Store(1)
		k = len(p.free)
	}
	if k <= 0 {
		return nil
	}
	out := make([]*poolWorker, 0, k)
	kept := p.free[:0]
	for _, pw := range p.free {
		if len(out) < k && pw.leased.CompareAndSwap(0, 1) {
			out = append(out, pw)
		} else {
			kept = append(kept, pw)
		}
	}
	p.free = kept
	return out
}

// release returns leased workers to the free list, restoring the sorted
// order lease depends on. The per-worker CAS makes a double release
// inert: the duplicate is counted and dropped, never re-enqueued.
func (p *pool) release(pws []*poolWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pw := range pws {
		if pw == nil {
			continue
		}
		if !pw.leased.CompareAndSwap(1, 0) {
			p.doubleReleases.Add(1)
			continue
		}
		p.free = append(p.free, pw)
	}
	sort.Slice(p.free, func(i, j int) bool { return p.free[i].id < p.free[j].id })
}

// idle returns the current free-list length.
func (p *pool) idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// takeStarved consumes the starved latch: true if some lease came up
// short since the last call.
func (p *pool) takeStarved() bool {
	return p.starved.CompareAndSwap(1, 0)
}

// offlineSignal unwinds a doomed worker out of the region body back to
// the worker loop, where it is recovered and the pool thread exits.
type offlineSignal struct{}

func (p *pool) workerLoop(tc exec.TC, pw *poolWorker) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(offlineSignal); !ok {
				panic(r)
			}
			pw.dead.Store(1)
		}
	}()
	gen := uint32(0)
	cpu := pw.cpu // current binding; pw.cpu stays the pool-level one
	for {
		for pw.gate.Load() == gen {
			tc.FutexWait(&pw.gate, gen)
		}
		gen = pw.gate.Load()
		if pw.stop.Load() == 1 {
			return
		}
		team := pw.team
		w := team.workers[pw.slot]
		w.tc = tc
		w.pw = pw
		w.gid = int32(pw.id)
		// Region placement: re-pin to this region's assigned CPU (the
		// binding policy may place a small team differently than the
		// pool), or migrate deterministically under proc_bind(false).
		if want, ok := team.slotCPU(pw.slot, gen); ok {
			if want != cpu {
				if mv, ok := tc.(exec.Mover); ok {
					mv.MoveCPU(want)
				}
				cpu = want
				pw.curCPU.Store(uint32(cpu + 1))
			}
			w.emitBind(cpu)
		}
		// Forward the fork tree before anything else — even a doomed
		// worker must dispatch its subtree, or the descendants would
		// never wake.
		w.forkChildren()
		if pw.doom.Load() == 1 {
			w.die() // doomed between fork and the first instruction
		}
		w.emitPlain(ompt.ImplicitTaskBegin, 0, 0)
		team.fn(w)
		w.join() // implicit join barrier of the parallel region
		w.emitPlain(ompt.ImplicitTaskEnd, 0, 0)
	}
}

func (p *pool) shutdown(tc exec.TC) {
	for _, pw := range p.workers {
		pw.stop.Store(1)
		pw.gate.Add(1)
		tc.FutexWake(&pw.gate, 1)
	}
	for _, pw := range p.workers {
		p.lib.Join(tc, pw.th)
	}
}

// Pool is an externally owned worker pool several runtimes share: the
// mechanism beneath the multi-tenant service (internal/tenancy). Create
// it once, hand it to each tenant runtime via Options.SharedPool, and
// Shutdown it after every tenant has Closed.
type Pool struct {
	p     *pool
	layer exec.Layer
}

// PoolOptions configures NewSharedPool.
type PoolOptions struct {
	// Workers is the number of leasable pool workers (ids 1..Workers).
	// Each tenant's encountering thread additionally masters its own
	// teams, as in the single-owner runtime.
	Workers int
	// PthreadImpl selects the pthread layer variant beneath the pool
	// (the workers' threads belong to the pool, not to any tenant).
	PthreadImpl pthread.Impl
	// CPUs, when non-nil, gives worker id i its pool-level binding
	// CPUs[i] (index 0 unused). Workers re-pin per region to their
	// team's placement regardless, so nil — unbound until first leased —
	// is the normal choice for a shared pool.
	CPUs []int
}

// NewSharedPool creates the pool's worker threads on layer. The calling
// thread context is only used to spawn them.
func NewSharedPool(tc exec.TC, layer exec.Layer, o PoolOptions) *Pool {
	if o.Workers < 0 {
		o.Workers = 0
	}
	lib := pthread.New(layer, o.PthreadImpl)
	return &Pool{p: newPool(tc, lib, o.Workers, o.CPUs, true), layer: layer}
}

// Workers returns the pool's leasable worker count.
func (sp *Pool) Workers() int { return len(sp.p.workers) }

// Idle returns how many workers are currently unleased.
func (sp *Pool) Idle() int { return sp.p.idle() }

// TakeStarved consumes the pool's starved latch: true if a fork since
// the last call found fewer free workers than it asked for. The tenancy
// service uses it to trigger a work-conserving rebalance.
func (sp *Pool) TakeStarved() bool { return sp.p.takeStarved() }

// DoubleReleases returns how many lease releases the CAS guard dropped
// as duplicates. Zero on a correct runtime; tests assert it.
func (sp *Pool) DoubleReleases() int64 { return sp.p.doubleReleases.Load() }

// OfflineCurrent models CPU cpu going away mid-run for a shared pool:
// every pool worker whose current (per-region) binding is cpu is doomed
// and leaves its team at the next safe point. Unlike Runtime.OfflineCPU
// it keys on the live binding rather than the pool-level one, because a
// shared pool's workers are re-pinned into whatever tenant shard leases
// them. It returns how many workers were doomed.
func (sp *Pool) OfflineCurrent(cpu int) int {
	n := 0
	for _, pw := range sp.p.workers {
		if pw.curCPU.Load() == uint32(cpu+1) && pw.dead.Load() == 0 && pw.doom.CompareAndSwap(0, 1) {
			n++
		}
	}
	return n
}

// Shutdown stops and joins every pool worker. Call it after all tenant
// runtimes have Closed (a Close with a shared pool releases the
// tenant's leases but leaves the pool running).
func (sp *Pool) Shutdown(tc exec.TC) { sp.p.shutdown(tc) }
