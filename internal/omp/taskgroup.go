package omp

import (
	"sync"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
)

// taskgroup is one #pragma omp taskgroup region's state: a count of
// unfinished member tasks and a futex for the wait at the region's end.
// Membership is inherited: a task created while a group is current joins
// it, and so do the tasks that task creates wherever its body runs — so
// the end-of-group wait covers all descendants, which is exactly how
// taskgroup differs from taskwait (children only).
type taskgroup struct {
	parent  *taskgroup // lexically enclosing group, restored on exit
	count   exec.Word  // unfinished member tasks, descendants included
	waiting exec.Word  // a thread is blocked in the end-of-group wait
	id      uint64     // spine group id

	// cancelled is the group's cancel flag (omp cancel taskgroup, or a
	// panic in a member task): bodies of member tasks not yet started
	// are discarded — with full accounting, so the end-of-group wait
	// still converges (cancel.go).
	cancelled exec.Word
	// A panic in a member task cancels the group and is re-raised on
	// the thread executing the taskgroup construct once the wait
	// completes, instead of killing whichever pool worker ran the task.
	// First panic wins; the happens-before to the re-raise is the
	// count word reaching zero.
	panicMu  sync.Mutex
	panicVal any
	panicked bool
}

// recordPanic captures the first panic of a member task (cancellation
// ICV on) for re-raise at the end of the taskgroup construct.
func (g *taskgroup) recordPanic(r any) {
	g.panicMu.Lock()
	if !g.panicked {
		g.panicked = true
		g.panicVal = r
	}
	g.panicMu.Unlock()
}

// Taskgroup runs fn with a taskgroup current, then waits until every
// task generated inside — and every descendant of those tasks — has
// completed (#pragma omp taskgroup). Unlike Taskwait it does not wait
// on sibling tasks created before the construct, and unlike Taskwait it
// does wait on deeper descendants. The waiting thread executes ready
// tasks while it waits.
func (w *Worker) Taskgroup(fn func(*Worker)) {
	g := &taskgroup{parent: w.curGroup, id: w.team.rt.groupSeq.Add(1)}
	w.emitTask(ompt.TaskgroupBegin, g.id, 0)
	w.runGroupBody(g, fn)
	w.emitSync(ompt.SyncAcquire, ompt.SyncTaskgroup, g.id)
	for {
		n := g.count.Load()
		if n == 0 {
			break
		}
		if w.runOneTask() {
			continue
		}
		g.waiting.Store(1)
		w.tc.FutexWait(&g.count, n)
		g.waiting.Store(0)
	}
	w.emitSync(ompt.SyncAcquired, ompt.SyncTaskgroup, g.id)
	w.emitTask(ompt.TaskgroupEnd, g.id, 0)
	if g.panicked {
		// A member task panicked: the group was cancelled, every member
		// drained, and the panic surfaces here — on the thread that owns
		// the construct — instead of aborting a pool worker.
		panic(g.panicVal)
	}
}

// runGroupBody runs fn with g as the current group. The restore is
// deferred so a panic unwinding out of fn (to a recover in the region
// body) cannot leave curGroup pointing at a dead group that silently
// enrolls later tasks; the end-of-group wait is still skipped on panic.
func (w *Worker) runGroupBody(g *taskgroup, fn func(*Worker)) {
	w.curGroup = g
	defer func() { w.curGroup = g.parent }()
	fn(w)
}
