package omp

import "sync"

// hotCache is one nesting site's bounded hot-team cache: the teams that
// ran this site's recent parallel regions, parked with their worker
// leases intact so a region of the same size forks with zero
// construction cost. There is one cache per site — the runtime's
// top-level slot plus one per forking worker — and each is bounded by
// KOMP_HOT_TEAMS_MAX with LRU eviction, so call-site or team-size churn
// reaches a steady state instead of growing a team (and holding a
// lease) per size forever.
//
// The cache is also the concurrency boundary of the fork path: take
// removes a team from the cache before the region runs and put parks it
// again after the join, so a cached team is owned by exactly one region
// at a time. Two Parallel calls racing on one runtime (two tenants
// share nothing here — each has its own caches) can therefore never
// claim the same team: the loser takes another entry or builds fresh.
type hotCache struct {
	mu   sync.Mutex
	max  int
	tick uint64 // logical clock for LRU age
	ents []hotEnt
}

type hotEnt struct {
	t    *Team
	used uint64
}

func newHotCache(max int) *hotCache {
	if max < 1 {
		max = 1
	}
	return &hotCache{max: max}
}

// take claims the most-recently-used cached team of size n, removing it
// from the cache, or returns nil on a miss. Steady-state take/put pairs
// are allocation-free (swap-remove here, append into retained capacity
// in put).
func (hc *hotCache) take(n int) *Team {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	best := -1
	for i, e := range hc.ents {
		if e.t.n == n && (best < 0 || e.used > hc.ents[best].used) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	t := hc.ents[best].t
	last := len(hc.ents) - 1
	hc.ents[best] = hc.ents[last]
	hc.ents[last] = hotEnt{}
	hc.ents = hc.ents[:last]
	return t
}

// put parks a team and returns the teams evicted to stay within the
// bound, least recently used first; the caller must release their
// leases (the cache never touches the pool itself — lock order stays
// cache→pool everywhere).
func (hc *hotCache) put(t *Team) []*Team {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	hc.tick++
	hc.ents = append(hc.ents, hotEnt{t: t, used: hc.tick})
	var evicted []*Team
	for len(hc.ents) > hc.max {
		lru := 0
		for i, e := range hc.ents {
			if e.used < hc.ents[lru].used {
				lru = i
			}
		}
		evicted = append(evicted, hc.ents[lru].t)
		last := len(hc.ents) - 1
		hc.ents[lru] = hc.ents[last]
		hc.ents[last] = hotEnt{}
		hc.ents = hc.ents[:last]
	}
	return evicted
}

// drain empties the cache and returns everything it held (nil when
// already empty). Used by the lease-shortfall path, the idle-tenant
// rebalance, team release and Close; the caller releases the teams.
func (hc *hotCache) drain() []*Team {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	var out []*Team
	for i, e := range hc.ents {
		out = append(out, e.t)
		hc.ents[i] = hotEnt{}
	}
	hc.ents = hc.ents[:0]
	return out
}

// size returns the number of cached teams.
func (hc *hotCache) size() int {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return len(hc.ents)
}
