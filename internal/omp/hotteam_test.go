package omp

import (
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/sim"
)

// TestHotTeamChurnSteadyState is the regression test for the hot-team
// cache under call-site churn: a program alternating between two team
// sizes must reach a steady state where forks build no new teams. The
// pre-cache runtime kept a single hot slot, so the alternation rebuilt
// a team (workers, deques, barrier tree) on every single fork.
func TestHotTeamChurnSteadyState(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(8, 7), simCosts())
	rt := New(layer, Options{MaxThreads: 8, Bind: true})
	body := func(w *Worker) { w.TC().Charge(100) }
	var warm, after int64
	if _, err := layer.Run(func(tc exec.TC) {
		for r := 0; r < 3; r++ { // warm the cache with both sizes
			rt.Parallel(tc, 4, body)
			rt.Parallel(tc, 2, body)
		}
		warm = rt.TeamBuilds()
		for r := 0; r < 50; r++ { // call-site churn: alternate team sizes
			rt.Parallel(tc, 4, body)
			rt.Parallel(tc, 2, body)
		}
		after = rt.TeamBuilds()
		if got := rt.CachedTeams(); got != 2 {
			t.Errorf("CachedTeams() = %d after churn over 2 sizes, want 2", got)
		}
		rt.Close(tc)
	}); err != nil {
		t.Fatal(err)
	}
	if after != warm {
		t.Fatalf("steady-state churn built %d new teams, want 0 (hot cache thrashing between sizes)", after-warm)
	}
}

// TestHotTeamsMaxEviction: the cache must stay within KOMP_HOT_TEAMS_MAX
// under churn across more sizes than the bound holds, evicted teams must
// return their worker leases (nothing leaks), and the LRU choice must
// evict the coldest size.
func TestHotTeamsMaxEviction(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(16, 7), simCosts())
	rt := New(layer, Options{MaxThreads: 16, Bind: true, HotTeamsMax: 2})
	body := func(w *Worker) { w.TC().Charge(100) }
	if _, err := layer.Run(func(tc exec.TC) {
		for r := 0; r < 8; r++ {
			for _, n := range []int{2, 3, 4, 5} {
				rt.Parallel(tc, n, body)
				if got := rt.CachedTeams(); got > 2 {
					t.Fatalf("CachedTeams() = %d, want <= HotTeamsMax (2)", got)
				}
			}
		}
		// Eviction must have released the evicted teams' leases: with
		// every cached team drained, the free list holds the full pool.
		rt.ReleaseCachedTeams()
		if idle := rt.pool.Load().idle(); idle != 15 {
			t.Errorf("pool has %d free workers after draining caches, want 15 (evicted teams leaked leases)", idle)
		}
		if dr := rt.pool.Load().doubleReleases.Load(); dr != 0 {
			t.Errorf("doubleReleases = %d, want 0", dr)
		}
		rt.Close(tc)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestHotTeamLRUKeepsHotSize: with a bound of 1, a run alternating a hot
// size with a parade of one-shot sizes must still reuse the hot size's
// team whenever it was the most recent — i.e. the bound is LRU, not
// clear-on-insert.
func TestHotTeamLRUIsByRecency(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(8, 7), simCosts())
	rt := New(layer, Options{MaxThreads: 8, Bind: true, HotTeamsMax: 2})
	body := func(w *Worker) { w.TC().Charge(100) }
	if _, err := layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 4, body) // cached: {4}
		rt.Parallel(tc, 2, body) // cached: {4, 2}
		rt.Parallel(tc, 4, body) // reuse 4 → recency {2, 4}
		base := rt.TeamBuilds()
		rt.Parallel(tc, 3, body) // evicts LRU (2), keeps 4: {4, 3}
		rt.Parallel(tc, 4, body) // must reuse, not rebuild
		if got := rt.TeamBuilds(); got != base+1 {
			t.Errorf("TeamBuilds grew by %d, want 1 (only the size-3 team; size 4 must survive the eviction)", got-base)
		}
		rt.Close(tc)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEnvHotTeamsMax: KOMP_HOT_TEAMS_MAX parsing.
func TestEnvHotTeamsMax(t *testing.T) {
	env := func(m map[string]string) func(string) (string, bool) {
		return func(k string) (string, bool) { v, ok := m[k]; return v, ok }
	}
	var o Options
	if err := o.Env(env(map[string]string{"KOMP_HOT_TEAMS_MAX": "3"})); err != nil {
		t.Fatal(err)
	}
	if o.HotTeamsMax != 3 {
		t.Errorf("HotTeamsMax = %d, want 3", o.HotTeamsMax)
	}
	for _, bad := range []string{"0", "-1", "many"} {
		var b Options
		if err := b.Env(env(map[string]string{"KOMP_HOT_TEAMS_MAX": bad})); err == nil {
			t.Errorf("KOMP_HOT_TEAMS_MAX=%q: want parse error", bad)
		}
	}
}
