package omp

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
)

// claimTracker asserts that no pool worker is ever inside two team
// bodies at once — the over-lease failure mode the per-worker CAS claim
// guard exists to prevent.
type claimTracker struct {
	t     *testing.T
	inUse []atomic.Int32
}

func newClaimTracker(t *testing.T, maxGid int) *claimTracker {
	return &claimTracker{t: t, inUse: make([]atomic.Int32, maxGid+1)}
}

// body is a region body: every leased worker (slot > 0; masters are the
// encountering threads, not leases) registers itself for the duration.
func (c *claimTracker) body(w *Worker) {
	if w.id == 0 {
		return
	}
	if n := c.inUse[w.gid].Add(1); n != 1 {
		c.t.Errorf("pool worker %d is in %d team bodies at once (over-lease)", w.gid, n)
	}
	for i := 0; i < 100; i++ { // dwell so overlaps are observable
		_ = i
	}
	c.inUse[w.gid].Add(-1)
}

// TestConcurrentForksDoNotOverLease is the regression test for the
// lease claim path: many goroutines forking through ONE runtime handle
// concurrently (the hot cache, the free list and the claim words all
// contended) must never hand the same pool worker to two teams, and
// must release every lease exactly once. Run under -race this also
// checks the claim/park protocol publishes team state safely. The
// pre-claim runtime kept a single unguarded hot-team slot, so two
// concurrent forks could both grab it and dispatch the same workers.
func TestConcurrentForksDoNotOverLease(t *testing.T) {
	layer := exec.NewRealLayer(8)
	rt := New(layer, Options{MaxThreads: 8})
	ct := newClaimTracker(t, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := layer.TC()
			for r := 0; r < 150; r++ {
				rt.Parallel(tc, 3, ct.body)
			}
		}()
	}
	wg.Wait()
	tc := layer.TC()
	p := rt.pool.Load()
	if p == nil {
		t.Fatal("no pool after forks")
	}
	if dr := p.doubleReleases.Load(); dr != 0 {
		t.Errorf("doubleReleases = %d, want 0", dr)
	}
	rt.ReleaseCachedTeams()
	if idle := p.idle(); idle != 7 {
		t.Errorf("pool has %d free workers after draining caches, want 7 (leases leaked or duplicated)", idle)
	}
	rt.Close(tc)
}

// TestSharedPoolTenantsDoNotOverLease hammers one shared pool from
// several independent runtime handles (the multi-tenant shape),
// including nested forks so the per-worker hotChild caches join the
// contention. No worker may ever serve two teams at once, and after all
// tenants close, the pool must hold exactly its full worker set.
func TestSharedPoolTenantsDoNotOverLease(t *testing.T) {
	layer := exec.NewRealLayer(8)
	boot := layer.TC()
	sp := NewSharedPool(boot, layer, PoolOptions{Workers: 6})
	ct := newClaimTracker(t, 6)
	const tenants = 3
	rts := make([]*Runtime, tenants)
	for i := range rts {
		rts[i] = New(layer, Options{
			MaxThreads: 4, MaxActiveLevels: 2,
			SharedPool: sp, Tenant: int32(i + 1),
		})
	}
	var wg sync.WaitGroup
	for i := range rts {
		rt := rts[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := layer.TC()
			for r := 0; r < 100; r++ {
				rt.Parallel(tc, 2, func(w *Worker) {
					ct.body(w)
					if w.id == 0 && r%4 == 0 {
						w.Parallel(2, ct.body) // nested: hotChild caches contend too
					}
				})
			}
		}()
	}
	wg.Wait()
	for _, rt := range rts {
		rt.Close(boot)
	}
	if dr := sp.DoubleReleases(); dr != 0 {
		t.Errorf("DoubleReleases() = %d, want 0", dr)
	}
	if idle := sp.Idle(); idle != 6 {
		t.Errorf("shared pool has %d free workers after all tenants closed, want 6", idle)
	}
	sp.Shutdown(boot)
}
