// target.go is the host side of device offload: the `target`,
// `target data` and `target enter/exit data` constructs over the
// internal/device subsystem, plus `target nowait` integrated into the
// tasking subsystem as an ordinary task with dependences.
package omp

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/interweaving/komp/internal/device"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
)

// parseDeviceGeometry reads a KOMP_DEVICE value: "cus,lanes", both
// positive integers (e.g. "16,64" — 16 compute units of 64 lanes).
func parseDeviceGeometry(s string) (cus, lanes int, err error) {
	a, b, ok := strings.Cut(strings.TrimSpace(s), ",")
	if ok {
		cus, err = strconv.Atoi(strings.TrimSpace(a))
		if err == nil {
			lanes, err = strconv.Atoi(strings.TrimSpace(b))
		}
	}
	if !ok || err != nil || cus < 1 || lanes < 1 {
		return 0, 0, fmt.Errorf("omp: KOMP_DEVICE=%q: want cus,lanes (two positive integers)", s)
	}
	return cus, lanes, nil
}

// parseBytes reads a byte count with an optional k/m/g suffix.
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "g"):
		t, mult = t[:len(t)-1], 1<<30
	case strings.HasSuffix(t, "m"):
		t, mult = t[:len(t)-1], 1<<20
	case strings.HasSuffix(t, "k"):
		t, mult = t[:len(t)-1], 1<<10
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return n * mult, nil
}

// Device returns the runtime's accelerator, initializing it lazily from
// the options on first use: an environment-provided instance when one
// was injected (Options.Device — the simulated environments share one
// device per machine model), otherwise a fresh device at the configured
// geometry (KOMP_DEVICE, default 8 CUs × 32 lanes).
func (rt *Runtime) Device() *device.Dev {
	if d := rt.dev.Load(); d != nil {
		return d
	}
	rt.devMu.Lock()
	defer rt.devMu.Unlock()
	if d := rt.dev.Load(); d != nil {
		return d
	}
	d := rt.opts.Device
	if d == nil {
		cus, lanes := rt.opts.DeviceCUs, rt.opts.DeviceLanes
		if cus <= 0 {
			cus = 8
		}
		if lanes <= 0 {
			lanes = 32
		}
		topo := machine.DefaultDevice(cus, lanes)
		if rt.opts.DeviceMemBytes > 0 {
			topo.MemBytes = rt.opts.DeviceMemBytes
		}
		d = device.New(topo, 0, rt.spine)
	}
	rt.dev.Store(d)
	return d
}

// DefaultDevice returns the OMP_DEFAULT_DEVICE ICV: the device number
// target constructs offload to, or a negative value for host fallback.
func (rt *Runtime) DefaultDevice() int { return rt.opts.DefaultDevice }

// hostFallback reports whether target regions run on the host (the
// OpenMP initial-device fallback: OMP_DEFAULT_DEVICE=-1, or any device
// number past the one device this runtime models).
func (rt *Runtime) hostFallback() bool { return rt.opts.DefaultDevice < 0 }

// Target executes a kernel on the default device (#pragma omp target
// teams distribute): enter the map clauses, launch the league, exit the
// maps in reverse — a mapping an enclosing TargetData already holds is
// only reference-counted, so no data moves for it. With host fallback
// in force the kernel body runs on the encountering thread instead and
// the maps degenerate to the identity (no separate device memory).
func (rt *Runtime) Target(tc exec.TC, maps []device.Map, k device.Kernel) (device.Result, error) {
	if rt.hostFallback() {
		return rt.targetHost(tc, k), nil
	}
	d := rt.Device()
	d.Enter(tc, maps...)
	res, err := d.Launch(tc, k)
	for i := len(maps) - 1; i >= 0; i-- {
		d.Exit(tc, maps[i])
	}
	return res, err
}

// TargetData brackets body with a structured device mapping (#pragma
// omp target data): target regions inside find the mappings present and
// move no data — the transfer-hoisting pattern the offload ablation
// measures. Host fallback makes it a plain call.
func (rt *Runtime) TargetData(tc exec.TC, maps []device.Map, body func()) {
	if rt.hostFallback() {
		body()
		return
	}
	rt.Device().Data(tc, maps, body)
}

// TargetEnterData / TargetExitData are the unstructured mapping
// lifetime (#pragma omp target enter/exit data): mappings created here
// persist until the matching exit releases the last reference.
func (rt *Runtime) TargetEnterData(tc exec.TC, maps ...device.Map) {
	if rt.hostFallback() {
		return
	}
	rt.Device().Enter(tc, maps...)
}

func (rt *Runtime) TargetExitData(tc exec.TC, maps ...device.Map) {
	if rt.hostFallback() {
		return
	}
	rt.Device().Exit(tc, maps...)
}

// targetHost is the initial-device fallback: the distribute loop runs
// as one host team on the encountering thread, charging the modeled
// per-iteration cost serially. Results are identical to a device run —
// only the clock differs.
func (rt *Runtime) targetHost(tc exec.TC, k device.Kernel) device.Result {
	res := device.Result{Reduced: k.Init}
	chunk := k.Chunk
	if chunk <= 0 {
		chunk = k.N
		if chunk < 1 {
			chunk = 1
		}
	}
	t0 := tc.Now()
	for lo := 0; lo < k.N; lo += chunk {
		hi := lo + chunk
		if hi > k.N {
			hi = k.N
		}
		if k.Body != nil {
			p := k.Body(device.Block{Lo: lo, Hi: hi})
			if k.Reduce != nil {
				res.Reduced = k.Reduce(res.Reduced, p)
			}
		}
		tc.Charge(int64(hi-lo) * k.IterNS)
		res.Blocks++
	}
	res.ElapsedNS = tc.Now() - t0
	return res
}

// TargetNowait offloads a kernel asynchronously (#pragma omp target
// nowait depend(...)): the target region becomes an explicit task in
// the Chase–Lev tasking subsystem, ordered by its depend clauses like
// any sibling task and drained by barriers and taskwait. done, when
// non-nil, runs on the executing thread after the kernel completes —
// the place to read the reduction value or the kernel error.
func (w *Worker) TargetNowait(opt TaskOpt, maps []device.Map, k device.Kernel,
	done func(device.Result, error)) {
	rt := w.team.rt
	w.TaskWith(opt, func(tw *Worker) {
		res, err := rt.Target(tw.tc, maps, k)
		if done != nil {
			done(res, err)
		}
	})
}
