package omp

import (
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/sim"
)

func allAlgos() []BarrierAlgo {
	return []BarrierAlgo{BarrierFlat, BarrierTree, BarrierHier}
}

// TestBarrierAlgoMatrix crosses every barrier algorithm with both exec
// layers on a workload mixing barriers, worksharing, singles and fused
// reductions, checking construct semantics hold regardless of topology.
func TestBarrierAlgoMatrix(t *testing.T) {
	for _, algo := range allAlgos() {
		algo := algo
		for name, mk := range testLayers() {
			t.Run(algo.String()+"/"+name, func(t *testing.T) {
				opts := Options{MaxThreads: 8, Bind: true, BarrierAlgo: algo}
				run(t, mk, opts, func(rt *Runtime, tc exec.TC) {
					const iters = 256
					hits := make([]atomic.Int32, iters)
					var singles atomic.Int64
					var badReduce atomic.Int64
					rt.Parallel(tc, 8, func(w *Worker) {
						for r := 0; r < 3; r++ {
							w.Barrier()
						}
						w.ForEach(0, iters, ForOpt{Sched: Dynamic, Chunk: 4}, func(i int) {
							hits[i].Add(1)
						})
						w.Single(false, func() { singles.Add(1) })
						if got := w.Reduce(ReduceSum, float64(w.ThreadNum()+1)); got != 36 {
							badReduce.Add(1)
						}
						if got := w.Reduce(ReduceMax, float64(w.ThreadNum())); got != 7 {
							badReduce.Add(1)
						}
					})
					checkCoverage(t, hits, algo.String())
					if singles.Load() != 1 {
						t.Fatalf("singles = %d", singles.Load())
					}
					if badReduce.Load() != 0 {
						t.Fatalf("%d threads saw a wrong fused reduction", badReduce.Load())
					}
				})
			})
		}
	}
}

// TestHierBarrierSmallTeamsAndFanouts checks the arrival tree degenerate
// shapes: teams smaller than one fanout group, odd sizes, and fanouts
// from binary up, on both layers.
func TestHierBarrierSmallTeamsAndFanouts(t *testing.T) {
	for _, fanout := range []int{2, 3, 4, 7} {
		for _, n := range []int{2, 3, 5, 8} {
			fanout, n := fanout, n
			forBothLayers(t, Options{MaxThreads: 8, Bind: true, BarrierFanout: fanout}, func(rt *Runtime, tc exec.TC) {
				var count atomic.Int64
				var badSum atomic.Int64
				rt.Parallel(tc, n, func(w *Worker) {
					for r := 0; r < 10; r++ {
						count.Add(1)
						w.Barrier()
						if got := w.Reduce(ReduceSum, 1); got != float64(n) {
							badSum.Add(1)
						}
					}
				})
				if count.Load() != int64(10*n) {
					t.Fatalf("fanout=%d n=%d: %d arrivals", fanout, n, count.Load())
				}
				if badSum.Load() != 0 {
					t.Fatalf("fanout=%d n=%d: %d bad reductions", fanout, n, badSum.Load())
				}
			})
		}
	}
}

// xeon8Costs mirrors the RTK cost table core.kernelCosts builds for the
// 8XEON machine (2.1 GHz, 8 sockets): cross-socket line transfers and
// wake staggers are doubled relative to a single socket.
func xeon8Costs() exec.Costs {
	return exec.Costs{
		ThreadSpawnNS: 2200, ThreadExitNS: 400, ThreadJoinNS: 300,
		FutexWaitEntryNS: 300, FutexWakeEntryNS: 280,
		FutexWakeLatencyNS: 900, FutexWakeStaggerNS: 220,
		AtomicRMWNS: 22, CacheLineXferNS: 90, YieldNS: 140,
		MallocNS: 200, FreeNS: 140,
	}
}

// barrierElapsed192 times `rounds` back-to-back team barriers on the
// simulated 192-CPU 8XEON under the given algorithm.
func barrierElapsed192(t *testing.T, algo BarrierAlgo, rounds int) int64 {
	t.Helper()
	const threads = 192
	layer := exec.NewSimLayer(sim.New(threads, 3), xeon8Costs())
	rt := New(layer, Options{MaxThreads: threads, Bind: true, BarrierAlgo: algo})
	var count atomic.Int64
	elapsed, err := layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, threads, func(w *Worker) {
			for r := 0; r < rounds; r++ {
				count.Add(1)
				w.Barrier()
			}
		})
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != int64(threads*rounds) {
		t.Fatalf("%v lost arrivals at 192: %d", algo, count.Load())
	}
	return elapsed
}

// TestHierBeatsFlatAtScale is the tentpole acceptance criterion: on the
// simulated 192-core machine, hierarchical arrival must beat the flat
// central-counter barrier by at least 2x in per-barrier overhead. The
// overhead is the marginal cost of extra barrier rounds (EPCC-style:
// one-time pool spawn and region fork/join subtract out).
func TestHierBeatsFlatAtScale(t *testing.T) {
	perRound := func(algo BarrierAlgo) int64 {
		return barrierElapsed192(t, algo, 40) - barrierElapsed192(t, algo, 20)
	}
	flat := perRound(BarrierFlat)
	tree := perRound(BarrierTree)
	hier := perRound(BarrierHier)
	if hier >= tree {
		t.Errorf("hier (%d ns/20 rounds) should beat tree release alone (%d ns) at 192", hier, tree)
	}
	if float64(flat) < 2*float64(hier) {
		t.Fatalf("hier barrier overhead = %d ns per 20 rounds, flat = %d ns: want >= 2x win at 192 cores",
			hier, flat)
	}
}

// TestFusedReduceCheaperThanTwoBarriers: a Reduce must cost measurably
// less than the two flat barriers the old algorithm spent, on the same
// 192-core sweep — under both the flat completer-scan fusion and the
// hierarchical per-node fusion.
func TestFusedReduceCheaperThanTwoBarriers(t *testing.T) {
	const threads = 192
	const rounds = 10
	elapse := func(algo BarrierAlgo, body func(w *Worker)) int64 {
		layer := exec.NewSimLayer(sim.New(threads, 3), xeon8Costs())
		rt := New(layer, Options{MaxThreads: threads, Bind: true, BarrierAlgo: algo})
		elapsed, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, threads, body)
			rt.Close(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	var bad atomic.Int64
	reduceBody := func(w *Worker) {
		for r := 0; r < rounds; r++ {
			if got := w.Reduce(ReduceSum, 1); got != threads {
				bad.Add(1)
			}
		}
	}
	twoBarriers := func(w *Worker) {
		for r := 0; r < rounds; r++ {
			w.Barrier()
			w.Barrier()
		}
	}
	flatRed := elapse(BarrierFlat, reduceBody)
	flatTwo := elapse(BarrierFlat, twoBarriers)
	if flatRed >= flatTwo {
		t.Errorf("flat fused reduce = %d ns, two flat barriers = %d ns: fusion must win", flatRed, flatTwo)
	}
	hierRed := elapse(BarrierHier, reduceBody)
	if hierRed >= flatTwo {
		t.Errorf("hier fused reduce = %d ns, two flat barriers = %d ns: fusion must win", hierRed, flatTwo)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d wrong reductions at 192", bad.Load())
	}
}

// TestForZeroAllocFastPath asserts the acceptance criterion that no
// worksharing construct allocates (or takes a structural lock) on its
// fast path: on the real layer, a steady-state batch of dynamic nowait
// loops must perform zero heap allocations across the whole team. The
// threads rendezvous around the measured window with a bare spin barrier
// because the team Barrier's futex path legitimately allocates on the
// real layer.
func TestForZeroAllocFastPath(t *testing.T) {
	layer := exec.NewRealLayer(4)
	rt := New(layer, Options{MaxThreads: 4, Bind: true})
	const loops = 50
	var phase atomic.Int32
	var arrived [4]atomic.Int32
	spinSync := func(p int32) {
		if arrived[p].Add(1) == 4 {
			phase.Store(p + 1)
		}
		for phase.Load() <= p {
			runtime.Gosched()
		}
	}
	var mallocs uint64
	_, err := layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			var sink atomic.Int64
			body := func(lo, hi int) { sink.Add(int64(hi - lo)) }
			// Warm the dispatch ring past its first lap so every slot has
			// been claimed and retired at least once.
			for l := 0; l < 2*dispatchRingSize; l++ {
				w.For(0, 64, ForOpt{Sched: Dynamic, Chunk: 8, NoWait: true}, body)
			}
			spinSync(0)
			w.Master(func() {
				gcPrev := debug.SetGCPercent(-1)
				defer debug.SetGCPercent(gcPrev)
				var m1, m2 runtime.MemStats
				runtime.ReadMemStats(&m1)
				spinSync(1) // open the measured window
				for l := 0; l < loops; l++ {
					w.For(0, 64, ForOpt{Sched: Dynamic, Chunk: 8, NoWait: true}, body)
				}
				spinSync(2) // close it
				runtime.ReadMemStats(&m2)
				mallocs = m2.Mallocs - m1.Mallocs
				spinSync(3)
			})
			if w.ThreadNum() != 0 {
				spinSync(1)
				for l := 0; l < loops; l++ {
					w.For(0, 64, ForOpt{Sched: Dynamic, Chunk: 8, NoWait: true}, body)
				}
				spinSync(2)
				spinSync(3) // hold off the (allocating) join barrier until m2 is read
			}
			w.Barrier()
		})
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if mallocs != 0 {
		t.Fatalf("worksharing fast path allocated: %d mallocs across %d loops on 4 threads",
			mallocs, loops)
	}
}

// TestDispatchRingRecyclesWithoutLock floods far more constructs through
// a region than the ring has slots, on both layers: every construct must
// still be claimed, used and retired exactly once.
func TestDispatchRingRecyclesWithoutLock(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		const loops = 10 * dispatchRingSize
		const iters = 16
		hits := make([]atomic.Int32, loops*iters)
		var singles atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			for l := 0; l < loops; l++ {
				l := l
				w.ForEach(0, iters, ForOpt{Sched: Dynamic, Chunk: 1, NoWait: true}, func(i int) {
					hits[l*iters+i].Add(1)
				})
				w.Single(true, func() { singles.Add(1) })
			}
			w.Barrier()
		})
		checkCoverage(t, hits, "ring recycle")
		if singles.Load() != loops {
			t.Fatalf("singles = %d, want %d", singles.Load(), loops)
		}
	})
}

// TestBarrierEnvICVs covers the new KOMP_* internal control variables.
func TestBarrierEnvICVs(t *testing.T) {
	env := map[string]string{
		"KOMP_BARRIER_ALGO":   "tree",
		"KOMP_BARRIER_FANOUT": "8",
		"KOMP_FORK_FANOUT":    "2",
	}
	lookup := func(k string) (string, bool) { v, ok := env[k]; return v, ok }
	var o Options
	if err := o.Env(lookup); err != nil {
		t.Fatal(err)
	}
	if o.BarrierAlgo != BarrierTree || o.BarrierFanout != 8 || o.ForkFanout != 2 {
		t.Fatalf("opts = %+v", o)
	}
	env["KOMP_BARRIER_ALGO"] = "hierarchical"
	if err := o.Env(lookup); err != nil || o.BarrierAlgo != BarrierHier {
		t.Fatalf("hierarchical alias: algo=%v err=%v", o.BarrierAlgo, err)
	}
	for k, bad := range map[string]string{
		"KOMP_BARRIER_ALGO":   "bogus",
		"KOMP_BARRIER_FANOUT": "1",
		"KOMP_FORK_FANOUT":    "0",
	} {
		saved := env[k]
		env[k] = bad
		if err := o.Env(lookup); err == nil {
			t.Fatalf("%s=%q must error", k, bad)
		}
		env[k] = saved
	}
	for _, tt := range []struct {
		algo BarrierAlgo
		s    string
	}{{BarrierHier, "hier"}, {BarrierFlat, "flat"}, {BarrierTree, "tree"}} {
		if tt.algo.String() != tt.s {
			t.Fatalf("%d.String() = %q", tt.algo, tt.algo.String())
		}
		if got, err := ParseBarrierAlgo(tt.s); err != nil || got != tt.algo {
			t.Fatalf("ParseBarrierAlgo(%q) = %v, %v", tt.s, got, err)
		}
	}
}

// TestHierDefaultAndDeterministic: the zero-value Options select the
// hierarchical barrier, and a region full of barriers and reductions
// stays virtual-time deterministic under it.
func TestHierDefaultAndDeterministic(t *testing.T) {
	if New(exec.NewRealLayer(2), Options{}).opts.BarrierAlgo != BarrierHier {
		t.Fatal("zero-value Options must default to the hierarchical barrier")
	}
	one := func() int64 {
		layer := exec.NewSimLayer(sim.New(16, 9), simCosts())
		rt := New(layer, Options{MaxThreads: 16, Bind: true})
		elapsed, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, 16, func(w *Worker) {
				for r := 0; r < 5; r++ {
					w.ForEach(0, 256, ForOpt{Sched: Dynamic, Chunk: 4}, func(i int) {
						w.TC().Charge(300)
					})
					w.Reduce(ReduceSum, float64(w.ThreadNum()))
				}
			})
			rt.Close(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if a, b := one(), one(); a != b {
		t.Fatalf("hier barrier non-deterministic on the simulator: %d vs %d", a, b)
	}
}
