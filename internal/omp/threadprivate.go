package omp

import "sync"

// ThreadPrivate is a threadprivate variable: each OpenMP thread owns a
// lazily-created copy that persists across parallel regions on the same
// pool (the #pragma omp threadprivate semantics). CopyIn implements the
// copyin clause: at region entry, every thread replaces its copy with a
// clone of the master's.
type ThreadPrivate struct {
	rt   *Runtime
	init func() any
	// clone produces the copyin clone of a value (nil: the value is
	// copied by assignment, fine for value types).
	clone func(any) any

	mu   sync.Mutex
	vals map[int]any // thread id -> value
}

// NewThreadPrivate declares a threadprivate variable with an initializer
// and an optional deep-clone function for copyin.
func (rt *Runtime) NewThreadPrivate(init func() any, clone func(any) any) *ThreadPrivate {
	if clone == nil {
		clone = func(v any) any { return v }
	}
	return &ThreadPrivate{rt: rt, init: init, clone: clone, vals: make(map[int]any)}
}

// Get returns the calling thread's copy, creating it on first use. The
// access is charged as a TLS load (threadprivate lives in the TLS block;
// §3.4's hardware-TLS machinery is what backs it in RTK).
func (tp *ThreadPrivate) Get(w *Worker) any {
	w.tc.Charge(w.tc.Costs().TLSAccessNS)
	tp.mu.Lock()
	defer tp.mu.Unlock()
	v, ok := tp.vals[w.id]
	if !ok {
		v = tp.init()
		tp.vals[w.id] = v
	}
	return v
}

// Set stores the calling thread's copy.
func (tp *ThreadPrivate) Set(w *Worker, v any) {
	w.tc.Charge(w.tc.Costs().TLSAccessNS)
	tp.mu.Lock()
	tp.vals[w.id] = v
	tp.mu.Unlock()
}

// CopyIn replaces every thread's copy with a clone of the master's value
// (the copyin clause). It must be called by all threads of the region
// and carries the implied synchronization: a barrier before the copies
// are visible.
func (tp *ThreadPrivate) CopyIn(w *Worker) {
	// The master publishes; everyone else clones after the barrier.
	if w.ThreadNum() == 0 {
		tp.Get(w) // ensure the master copy exists
	}
	w.Barrier()
	if w.ThreadNum() != 0 {
		tp.mu.Lock()
		master := tp.vals[0]
		tp.mu.Unlock()
		tp.Set(w, tp.clone(master))
	}
	w.Barrier()
}
