package omp

// Cancellation (#pragma omp cancel / cancellation point), gated by the
// OMP_CANCELLATION ICV. The protocol follows libomp's shape:
//
//   - One team-level word holds the active cancel bits (parallel, loop,
//     sections); taskgroups carry their own flag. Cancel publishes a
//     bit; the runtime checks it at every scheduling point — barrier
//     arrival and wait, loop-chunk claims in the dispatch rings, task
//     execution, and the dispatch-ring acquire spin.
//
//   - A cancelled worksharing construct stops dispatching chunks; its
//     closing barrier (cancellation requires the construct not be
//     nowait) clears the loop/sections bits for the next construct.
//
//   - Cancelling the parallel construct abandons inner barriers: parked
//     waiters leave early and later barriers are skipped, so threads
//     converge at the region's *join*. Because abandoned generations
//     never complete, a cancellable region joins on a dedicated arrival
//     counter rather than the generation barrier — the same separation
//     libomp makes between its plain and fork-join barriers.
//
//   - Cancelled tasks are drained, not dropped: the body is skipped but
//     finishTask still runs, so dependence release (releaseSuccs),
//     parent/taskgroup counts and team accounting all fire exactly once.
//
// Observation cost is modeled explicitly (pollCancel): a poll that sees
// no news is a shared-state cache hit and free; the first poll after a
// publish pays the line transfer. Under flat propagation every observer
// misses on one central line — n workers serialize there, O(n) until
// the last observer. Under tree propagation (KOMP_CANCEL_PROP=tree, the
// default when the team has a barrier tree) the bits ride the fanout-k
/// arrival tree: pioneers copy the root's bits down their own path and
// each line is shared by at most fanout workers, so the last observer is
// O(fanout·log n) transfers away — the hierarchical-runtime argument
// (Thibault et al.) applied to cancellation.

import (
	"fmt"
	"strings"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
)

// CancelKind names the construct a cancellation request applies to (the
// construct-type-clause of #pragma omp cancel).
type CancelKind int

// Cancellable construct kinds.
const (
	// CancelParallel cancels the innermost enclosing parallel region.
	CancelParallel CancelKind = iota
	// CancelFor cancels the innermost enclosing worksharing loop.
	CancelFor
	// CancelSections cancels the innermost enclosing sections construct.
	CancelSections
	// CancelTaskgroup cancels the current taskgroup: bodies of its
	// not-yet-started member tasks (descendants included) are discarded.
	CancelTaskgroup
)

func (k CancelKind) String() string {
	switch k {
	case CancelParallel:
		return "parallel"
	case CancelFor:
		return "for"
	case CancelSections:
		return "sections"
	case CancelTaskgroup:
		return "taskgroup"
	}
	return "cancel?"
}

// Team cancel bits (cancelFlags and the tree's per-node copies).
const (
	cancelBitParallel uint32 = 1 << iota
	cancelBitLoop
	cancelBitSections
)

// cancelWSBits are the worksharing bits a construct-closing barrier
// clears.
const cancelWSBits = cancelBitLoop | cancelBitSections

// Arg1 values of the ompt.Cancel event.
const (
	// cancelActivated: a thread (or the deadline alarm, Thread -1)
	// activated cancellation; Arg0 is the CancelKind.
	cancelActivated int64 = iota
	// cancelDiscardedTask: a cancelled task's body was skipped; Obj is
	// the task id.
	cancelDiscardedTask
)

// CancelProp selects how published cancel bits reach polling workers
// (KOMP_CANCEL_PROP).
type CancelProp int

// Propagation modes.
const (
	// CancelPropAuto (default): tree when the team has a barrier
	// arrival tree (BarrierHier, n > 1), flat otherwise.
	CancelPropAuto CancelProp = iota
	// CancelPropFlat: every poll reads one central word; after a
	// publish all n observers miss on the same line and serialize.
	CancelPropFlat
	// CancelPropTree: the bits propagate down the fanout-k barrier
	// tree; each line is shared by at most fanout workers, so the team
	// observes cancellation in O(fanout·log n) serialized transfers.
	CancelPropTree
)

func (p CancelProp) String() string {
	switch p {
	case CancelPropFlat:
		return "flat"
	case CancelPropTree:
		return "tree"
	}
	return "auto"
}

// ParseCancelProp parses a KOMP_CANCEL_PROP-style string.
func ParseCancelProp(s string) (CancelProp, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "auto", "":
		return CancelPropAuto, nil
	case "flat":
		return CancelPropFlat, nil
	case "tree":
		return CancelPropTree, nil
	}
	return 0, fmt.Errorf("omp: unknown cancel propagation %q (want auto, flat or tree)", s)
}

// orWord atomically ORs bits into w, reporting whether any bit was new.
func orWord(w *exec.Word, bits uint32) bool {
	for {
		old := w.Load()
		if old&bits == bits {
			return false
		}
		if w.CompareAndSwap(old, old|bits) {
			return true
		}
	}
}

// Cancel activates cancellation of the given construct for the team (or
// of the current taskgroup) — #pragma omp cancel. It returns true when
// cancellation is enabled and was (or already had been) activated; the
// encountering thread must then branch to the end of the construct, as
// the compiled pragma does: return from the region body for parallel,
// stop issuing work after a for/sections/taskgroup cancel. With the
// OMP_CANCELLATION ICV off it does nothing and returns false.
//
// A cancelled for/sections construct must not be nowait: the construct's
// closing barrier is what retires the cancellation request.
func (w *Worker) Cancel(kind CancelKind) bool {
	t := w.team
	if !t.cancellable {
		return false
	}
	if kind == CancelTaskgroup {
		g := w.curGroup
		if g == nil {
			return false
		}
		w.cancelGroup(g)
		return true
	}
	var bit uint32
	switch kind {
	case CancelParallel:
		bit = cancelBitParallel
	case CancelFor:
		bit = cancelBitLoop
	case CancelSections:
		bit = cancelBitSections
	}
	if t.publishCancel(w.tc, bit) {
		w.emitCancel(kind, 0, cancelActivated)
	}
	w.cancelSeen |= bit // the canceller needs no poll to observe itself
	return true
}

// CancellationPoint polls for an active cancellation of the given
// construct kind — #pragma omp cancellation point. It returns true when
// the thread must branch to the end of the construct. A cancelled
// parallel construct also cancels the worksharing and taskgroup points
// inside it. With OMP_CANCELLATION off it is one branch and false.
func (w *Worker) CancellationPoint(kind CancelKind) bool {
	t := w.team
	if !t.cancellable {
		return false
	}
	if kind == CancelTaskgroup {
		return w.groupCancelled(w.curGroup) || t.parCancelled()
	}
	mask := cancelBitParallel
	switch kind {
	case CancelFor:
		mask |= cancelBitLoop
	case CancelSections:
		mask |= cancelBitSections
	}
	if w.pollCancel()&mask != 0 {
		return true
	}
	// A cancelled enclosing region cancels everything forked inside it.
	// publishCancel pushes the bit into registered sub-teams, so this
	// walk only fires in the window before the push lands (or for a
	// region forked concurrently with the publish).
	return t.parent != nil && t.ancestorCancelled()
}

// cancelGroup cancels taskgroup g: bodies of member tasks that have not
// started yet (descendant groups included) are discarded.
func (w *Worker) cancelGroup(g *taskgroup) {
	if g.cancelled.CompareAndSwap(0, 1) {
		w.emitCancel(CancelTaskgroup, g.id, cancelActivated)
	}
}

// groupCancelled walks the taskgroup nesting chain: cancelling a group
// cancels its descendant groups' tasks too.
func (w *Worker) groupCancelled(g *taskgroup) bool {
	for ; g != nil; g = g.parent {
		if g.cancelled.Load() == 1 {
			return true
		}
	}
	return false
}

// taskCancelled reports whether t's body must be discarded: the task's
// own parallel construct (not necessarily the executing thread's — a
// cross-team thief may be running it) is cancelled, or t's taskgroup
// (or an ancestor group) is.
func (w *Worker) taskCancelled(t *task) bool {
	if t.team.parCancelled() {
		return true
	}
	return t.group != nil && w.groupCancelled(t.group)
}

// publishCancel sets bits in the team's cancel word and pushes them to
// the poll surface: the central line under flat propagation, the tree
// root under hierarchical. Parallel cancellation also unparks threads
// blocked in a barrier or at the join, so they observe the cancel
// instead of waiting for arrivals that will never come. It reports
// whether any bit was newly set. Callers without a worker context (the
// deadline alarm) pass their own TC; the publish traffic is charged to
// the canceller.
func (t *Team) publishCancel(tc exec.TC, bits uint32) bool {
	if !orWord(&t.cancelFlags, bits) {
		return false
	}
	xfer := tc.Costs().CacheLineXferNS
	if t.cancelTree {
		root := &t.bar.nodes[t.bar.root]
		orWord(&root.cancel, bits)
		tc.Contend(&root.cancelLine, xfer)
	} else {
		tc.Contend(&t.cancelLine, xfer)
	}
	if bits&cancelBitParallel != 0 {
		tc.FutexWake(&t.barGen, -1)
		tc.FutexWake(&t.joinGen, -1)
		if t.subActive.Load() != 0 {
			// Cancellation propagates down the team hierarchy: every
			// active inner team inherits the parallel bit on its own
			// cancel word (and barrier tree), recursively, so inner
			// pollers observe the outer cancel at their usual cost. The
			// reverse never happens — an inner cancel stays scoped to the
			// inner team.
			for _, iw := range t.workers {
				st := iw.sub.Load()
				if st == nil || !st.cancellable {
					continue
				}
				if st.publishCancel(tc, cancelBitParallel) && st.n > 1 {
					if sp := t.rt.spine; sp.Enabled(ompt.Cancel) {
						sp.Emit(ompt.Event{Kind: ompt.Cancel, Thread: -1,
							CPU: int32(tc.CPU()), TimeNS: tc.Now(),
							Region: st.region, Level: int32(st.level),
							Tenant: t.rt.opts.Tenant,
							Arg0:   int64(CancelParallel), Arg1: cancelActivated})
					}
				}
			}
		}
	}
	return true
}

// pollCancel is the cancellation check at a scheduling point. It returns
// the team's active cancel bits, modeling the coherence cost of the
// poll: a poll that observes nothing new is a shared-state cache hit
// (free); the first poll after a publish pays the line transfer — on the
// one central line under flat propagation, on this worker's tree path
// under hierarchical. Never called with the ICV off (cancellable gates
// every call site), so the disabled fast path stays a single branch.
func (w *Worker) pollCancel() uint32 {
	t := w.team
	if t.cancelTree {
		return w.pollCancelTree()
	}
	v := t.cancelFlags.Load()
	if v != w.cancelSeen {
		// Coherence miss on the central line: after a publish, every
		// polling worker lands here and the misses serialize — the last
		// of n observers is O(n) transfers behind the cancel.
		w.tc.Contend(&t.cancelLine, w.tc.Costs().CacheLineXferNS)
		w.cancelSeen = v
	}
	return v
}

// pollCancelTree is the hierarchical poll: read the own leaf's copy
// (miss only when it changed, on a line shared by at most fanout
// siblings), and pull fresh root bits down the own path when the leaf
// has not heard yet. The first poller of each subtree pioneers the path
// — one transfer per level it updates; siblings behind it find their
// leaf already written and pay a single leaf miss.
func (w *Worker) pollCancelTree() uint32 {
	t := w.team
	bt := t.bar
	c := w.tc.Costs()
	leaf := &bt.nodes[bt.leafOf[w.id]]
	if v := leaf.cancel.Load(); v != w.cancelSeen {
		w.tc.Contend(&leaf.cancelLine, c.CacheLineXferNS)
		w.cancelSeen = v
		return v
	}
	root := bt.nodes[bt.root].cancel.Load()
	if root == w.cancelSeen {
		return w.cancelSeen
	}
	// Pioneer: copy the root's bits down this worker's leaf-to-root
	// path, top-down so a subtree's word is never ahead of its parent.
	var path [32]int
	depth := 0
	for ni := bt.leafOf[w.id]; ni >= 0; ni = bt.nodes[ni].parent {
		path[depth] = ni
		depth++
	}
	for i := depth - 1; i >= 0; i-- {
		nd := &bt.nodes[path[i]]
		if orWord(&nd.cancel, root) {
			w.tc.Contend(&nd.cancelLine, c.CacheLineXferNS)
		}
	}
	w.cancelSeen |= root
	return w.cancelSeen
}

// parCancelled is the cheap unmodeled check used where a poll's
// coherence cost is already paid by surrounding traffic (barrier
// arrival, task dispatch, ring-acquire spins). For a non-nested team
// the ancestor walk is one nil check.
func (t *Team) parCancelled() bool {
	if !t.cancellable {
		return false
	}
	if t.cancelFlags.Load()&cancelBitParallel != 0 {
		return true
	}
	return t.parent != nil && t.ancestorCancelled()
}

// ancestorCancelled walks the enclosing-team chain for an active
// parallel cancellation. It closes the race window between an outer
// publish and its push into this team's own cancel word (and covers
// teams forked concurrently with the publish).
func (t *Team) ancestorCancelled() bool {
	for p := t.parent; p != nil; p = p.parent {
		if p.cancellable && p.cancelFlags.Load()&cancelBitParallel != 0 {
			return true
		}
	}
	return false
}

// clearWSCancel ends a worksharing cancellation at the barrier closing
// the cancelled construct. A cancelled for/sections may not be nowait,
// so when the closing barrier completes no thread is inside a construct
// and no poller is live — the clear cannot race a pioneer copying stale
// bits back down the tree.
func (t *Team) clearWSCancel() {
	v := t.cancelFlags.Load()
	if v&cancelWSBits == 0 {
		return
	}
	keep := v & cancelBitParallel
	t.cancelFlags.Store(keep)
	if t.cancelTree {
		for i := range t.bar.nodes {
			t.bar.nodes[i].cancel.Store(keep)
		}
	}
}

// join is the implicit barrier ending a parallel region. Without the
// cancellation ICV it is the ordinary team barrier — bit-identical to
// the pre-cancellation runtime. With it, the join arrives on a dedicated
// counter: a cancelled region abandons its inner barriers (parked
// waiters leave early, later barriers are skipped), so join arrivals
// must never be absorbed by a half-complete inner generation. libomp
// separates its fork-join barrier from the plain barrier for the same
// reason.
func (w *Worker) join() {
	t := w.team
	if !t.cancellable {
		w.Barrier()
		return
	}
	if w.doomed() {
		w.die() // safe point: removeWorker completes the join if needed
	}
	w.emitSync(ompt.SyncAcquire, ompt.SyncBarrier, 0)
	tc := w.tc
	c := tc.Costs()
	gen := t.joinGen.Load()
	tc.Contend(&t.joinLine, c.AtomicRMWNS+c.CacheLineXferNS)
	if arrived := t.joinArrived.Add(1); arrived >= t.alive.Load() {
		w.finishJoin()
	} else {
		for t.joinGen.Load() == gen {
			if t.pendingWork() {
				// A task scheduling point like any barrier: cancelled
				// task bodies are discarded with full accounting.
				if !w.runOneTask() {
					tc.Yield()
				}
				continue
			}
			tag := t.addSleeper()
			if !t.pendingWork() {
				tc.FutexWait(&t.joinGen, gen)
			}
			t.removeSleeper(tag)
		}
	}
	w.emitSync(ompt.SyncAcquired, ompt.SyncBarrier, 0)
}

// finishJoin completes the dedicated join barrier on behalf of the last
// arrival — or of a dying worker whose removal satisfied the count,
// which is how a team that shrinks and cancels at the same barrier still
// converges.
func (w *Worker) finishJoin() {
	t := w.team
	tc := w.tc
	if t.pending.Load() > 0 {
		tc.FutexWake(&t.joinGen, -1) // recruit parked waiters as thieves
	}
	for t.pending.Load() > 0 {
		if !w.runOneTask() {
			tc.Yield()
		}
	}
	t.joinArrived.Store(0)
	t.joinGen.Add(1)
	tc.FutexWake(&t.joinGen, -1)
}

// armDeadline starts the region-deadline timer when both the
// cancellation ICV and a deadline (KOMP_REGION_DEADLINE / WithDeadline)
// are set: a region still running when the alarm fires is cancelled
// exactly as if a thread had executed Cancel(CancelParallel). The alarm
// runs on a context of its own — a timer proc on the simulator's DES
// clock, the timer goroutine's wall clock on the real layer. The
// returned stop disarms an unfired alarm; on the simulator a stopped
// alarm leaves no trace on virtual time.
func (rt *Runtime) armDeadline(tc exec.TC, t *Team) func() {
	ns := rt.opts.RegionDeadlineNS
	if !t.cancellable || ns <= 0 {
		return nil
	}
	al, ok := tc.(exec.Alarmer)
	if !ok {
		return nil
	}
	return al.Alarm(ns, func(atc exec.TC) {
		if t.publishCancel(atc, cancelBitParallel) {
			sp := rt.spine
			if sp.Enabled(ompt.Cancel) {
				sp.Emit(ompt.Event{Kind: ompt.Cancel, Thread: -1, CPU: int32(atc.CPU()),
					TimeNS: atc.Now(), Region: t.region, Level: int32(t.level),
					Tenant: rt.opts.Tenant,
					Arg0:   int64(CancelParallel), Arg1: cancelActivated})
			}
		}
	})
}
