package omp

import (
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/sim"
)

// shrinkRun builds a resilient runtime on a fresh simulator, lets the
// test arm fault events against the sim, runs body as the master thread
// and returns the elapsed virtual time.
func shrinkRun(t *testing.T, opts Options, arm func(s *sim.Sim, rt *Runtime), body func(rt *Runtime, tc exec.TC)) int64 {
	t.Helper()
	s := sim.New(8, 7)
	layer := exec.NewSimLayer(s, simCosts())
	rt := New(layer, opts)
	if arm != nil {
		arm(s, rt)
	}
	elapsed, err := layer.Run(func(tc exec.TC) {
		body(rt, tc)
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	return elapsed
}

func resilientOpts() Options {
	return Options{MaxThreads: 4, Bind: true, Resilient: true}
}

// TestShrinkDynamicLoopExactlyOnce takes a CPU offline mid-loop: the
// dead worker's unclaimed chunks must be redistributed so every
// iteration still runs exactly once, and the region must complete.
func TestShrinkDynamicLoopExactlyOnce(t *testing.T) {
	const iters = 200
	cov := make([]int, iters)
	aliveAfter := 0
	shrinkRun(t, resilientOpts(),
		func(s *sim.Sim, rt *Runtime) {
			s.At(1_000_000, func() {
				if n := rt.OfflineCPU(2); n != 1 {
					t.Errorf("OfflineCPU doomed %d workers, want 1", n)
				}
			})
		},
		func(rt *Runtime, tc exec.TC) {
			rt.Parallel(tc, 4, func(w *Worker) {
				w.ForEach(0, iters, ForOpt{Sched: Dynamic, Chunk: 2}, func(i int) {
					w.TC().Charge(40_000)
					cov[i]++
				})
				aliveAfter = w.NumAlive()
			})
		})
	for i, c := range cov {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
	if aliveAfter != 3 {
		t.Fatalf("NumAlive = %d after shrink, want 3", aliveAfter)
	}
}

// TestShrinkStaticDegradesToExactlyOnce: with Resilient set, a static
// loop degrades to shared-counter claiming, so a mid-loop CPU offline
// loses no iterations (a fixed block partition would).
func TestShrinkStaticDegradesToExactlyOnce(t *testing.T) {
	const iters = 128
	cov := make([]int, iters)
	shrinkRun(t, resilientOpts(),
		func(s *sim.Sim, rt *Runtime) {
			s.At(800_000, func() { rt.OfflineCPU(1) })
		},
		func(rt *Runtime, tc exec.TC) {
			rt.Parallel(tc, 4, func(w *Worker) {
				w.ForEach(0, iters, ForOpt{Sched: Static}, func(i int) {
					w.TC().Charge(60_000)
					cov[i]++
				})
			})
		})
	for i, c := range cov {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

// TestShrinkDyingWorkerCompletesBarrier arranges for the doomed worker
// to be the last arrival the barrier is waiting on: its departure must
// release the survivors instead of hanging the team.
func TestShrinkDyingWorkerCompletesBarrier(t *testing.T) {
	for _, algo := range []BarrierAlgo{BarrierFlat, BarrierTree, BarrierHier} {
		opts := resilientOpts()
		opts.BarrierAlgo = algo
		passed := 0
		shrinkRun(t, opts,
			func(s *sim.Sim, rt *Runtime) {
				// Worker 3 is mid-charge when its CPU dies; everyone else
				// is already parked in the barrier.
				s.At(1_000_000, func() { rt.OfflineCPU(3) })
			},
			func(rt *Runtime, tc exec.TC) {
				rt.Parallel(tc, 4, func(w *Worker) {
					if w.ThreadNum() == 3 {
						w.TC().Charge(5_000_000)
					}
					w.Barrier()
					passed++
				})
			})
		if passed != 3 {
			t.Fatalf("%v: %d workers passed the barrier, want the 3 survivors", algo, passed)
		}
	}
}

// TestShrinkReduceSkipsDeadSlot: a reduction after a shrink combines
// only the survivors' contributions; the dead worker's stale slot from
// the previous round must not leak in.
func TestShrinkReduceSkipsDeadSlot(t *testing.T) {
	var r1, r2 float64
	shrinkRun(t, resilientOpts(),
		func(s *sim.Sim, rt *Runtime) {
			s.At(1_000_000, func() { rt.OfflineCPU(2) })
		},
		func(rt *Runtime, tc exec.TC) {
			rt.Parallel(tc, 4, func(w *Worker) {
				a := w.Reduce(ReduceSum, 1) // before the fault: 4 contributors
				// Long enough that the offline at t=1ms lands mid-loop, so
				// the doomed worker dies at a chunk claim before round 2.
				w.ForEach(0, 64, ForOpt{Sched: Dynamic, Chunk: 1}, func(i int) {
					w.TC().Charge(200_000)
				})
				b := w.Reduce(ReduceSum, 1) // after the shrink: 3 survivors
				w.Master(func() { r1, r2 = a, b })
			})
		})
	if r1 != 4 {
		t.Fatalf("pre-fault reduce = %v, want 4", r1)
	}
	if r2 != 3 {
		t.Fatalf("post-shrink reduce = %v, want 3 (survivors only)", r2)
	}
}

// TestShrinkReduceMidRound kills a worker in the middle of a reduction
// round, after its teammates have already contributed and parked in the
// fused barrier: the dying worker's removal must complete the barrier,
// combine only the survivors' slots, and broadcast the right result —
// under every barrier algorithm.
func TestShrinkReduceMidRound(t *testing.T) {
	for _, algo := range []BarrierAlgo{BarrierFlat, BarrierTree, BarrierHier} {
		opts := resilientOpts()
		opts.BarrierAlgo = algo
		var sum float64
		got := 0
		shrinkRun(t, opts,
			func(s *sim.Sim, rt *Runtime) {
				// Worker 3 is mid-charge when its CPU dies; the other three
				// have contributed and are waiting inside the reduction.
				s.At(1_000_000, func() { rt.OfflineCPU(3) })
			},
			func(rt *Runtime, tc exec.TC) {
				rt.Parallel(tc, 4, func(w *Worker) {
					if w.ThreadNum() == 3 {
						w.TC().Charge(5_000_000)
					}
					r := w.Reduce(ReduceSum, float64(w.ThreadNum()+1))
					w.Master(func() { sum = r })
					got++
				})
			})
		if got != 3 {
			t.Fatalf("%v: %d survivors finished, want 3", algo, got)
		}
		// Workers 0,1,2 contributed 1+2+3; the doomed worker 3 never did.
		if sum != 6 {
			t.Fatalf("%v: mid-round reduce = %v, want 6 (survivors only)", algo, sum)
		}
	}
}

// TestShrinkDispatchRingNoLeak is the descriptor-leak regression: the old
// map-based descriptors were never GC'd once a worker died (the arrival
// count compared against t.n became unreachable). With the ring, a
// buffer orphaned by the death is reclaimed via the quiescence rescue
// when the ring wraps onto it — so a long run of nowait loops after a
// shrink must keep completing, each construct exactly once.
func TestShrinkDispatchRingNoLeak(t *testing.T) {
	const loops = 4 * dispatchRingSize
	const iters = 32
	cov := make([]int32, loops*iters)
	var singles int32
	shrinkRun(t, resilientOpts(),
		func(s *sim.Sim, rt *Runtime) {
			s.At(400_000, func() { rt.OfflineCPU(2) })
		},
		func(rt *Runtime, tc exec.TC) {
			rt.Parallel(tc, 4, func(w *Worker) {
				for l := 0; l < loops; l++ {
					l := l
					w.ForEach(0, iters, ForOpt{Sched: Dynamic, Chunk: 1, NoWait: true}, func(i int) {
						w.TC().Charge(2_000)
						cov[l*iters+i]++
					})
					w.Single(true, func() { singles++ })
				}
				w.Barrier()
			})
		})
	for i, c := range cov {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times after the shrink", i, c)
		}
	}
	if singles != loops {
		t.Fatalf("singles = %d, want %d", singles, loops)
	}
}

// TestShrinkPersistsAcrossRegions: a worker lost in one region stays
// gone; the next region forks without it and still covers all work.
func TestShrinkPersistsAcrossRegions(t *testing.T) {
	const iters = 64
	cov := make([]int, iters)
	var alive2 int
	shrinkRun(t, resilientOpts(),
		func(s *sim.Sim, rt *Runtime) {
			s.At(500_000, func() { rt.OfflineCPU(1) })
		},
		func(rt *Runtime, tc exec.TC) {
			rt.Parallel(tc, 4, func(w *Worker) {
				w.ForEach(0, iters, ForOpt{Sched: Dynamic, Chunk: 1}, func(i int) {
					w.TC().Charge(60_000)
				})
			})
			rt.Parallel(tc, 4, func(w *Worker) {
				if w.ThreadNum() == 0 {
					alive2 = w.NumAlive()
				}
				w.ForEach(0, iters, ForOpt{Sched: Dynamic, Chunk: 1}, func(i int) {
					w.TC().Charge(10_000)
					cov[i]++
				})
			})
		})
	if alive2 != 3 {
		t.Fatalf("second region NumAlive = %d, want 3 from the start", alive2)
	}
	for i, c := range cov {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times in the shrunk region", i, c)
		}
	}
}

// TestShrinkDeterministic: the same fault plan on the same seed yields
// the same virtual-time trajectory.
func TestShrinkDeterministic(t *testing.T) {
	one := func() int64 {
		return shrinkRun(t, resilientOpts(),
			func(s *sim.Sim, rt *Runtime) {
				s.At(1_000_000, func() { rt.OfflineCPU(2) })
			},
			func(rt *Runtime, tc exec.TC) {
				rt.Parallel(tc, 4, func(w *Worker) {
					w.ForEach(0, 100, ForOpt{Sched: Dynamic, Chunk: 2}, func(i int) {
						w.TC().Charge(40_000)
					})
				})
			})
	}
	a, b := one(), one()
	if a != b {
		t.Fatalf("same fault plan diverged: %d vs %d virtual ns", a, b)
	}
}

// TestResilientFaultFreeUnperturbed: with no fault injected, a resilient
// dynamic-schedule run costs exactly what the baseline does — the shrink
// machinery must be free until it fires.
func TestResilientFaultFreeUnperturbed(t *testing.T) {
	run := func(resilient bool) int64 {
		opts := Options{MaxThreads: 4, Bind: true, Resilient: resilient}
		return shrinkRun(t, opts, nil, func(rt *Runtime, tc exec.TC) {
			rt.Parallel(tc, 4, func(w *Worker) {
				w.ForEach(0, 100, ForOpt{Sched: Dynamic, Chunk: 2}, func(i int) {
					w.TC().Charge(40_000)
				})
				w.Reduce(ReduceSum, float64(w.ThreadNum()))
			})
		})
	}
	base, res := run(false), run(true)
	if base != res {
		t.Fatalf("resilient mode perturbed a fault-free run: %d vs %d virtual ns", base, res)
	}
}
