package omp

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/sim"
	"github.com/interweaving/komp/internal/trace"
)

func simCosts() exec.Costs {
	return exec.Costs{
		ThreadSpawnNS: 2000, ThreadJoinNS: 300,
		FutexWaitEntryNS: 100, FutexWakeEntryNS: 100,
		FutexWakeLatencyNS: 300, FutexWakeStaggerNS: 30,
		AtomicRMWNS: 20, CacheLineXferNS: 40, MallocNS: 100,
	}
}

func testLayers() map[string]func() exec.Layer {
	return map[string]func() exec.Layer{
		"real": func() exec.Layer { return exec.NewRealLayer(8) },
		"sim":  func() exec.Layer { return exec.NewSimLayer(sim.New(8, 7), simCosts()) },
	}
}

// run executes body inside a fresh runtime on the layer, closing the pool
// afterwards. Every run carries the lock-discipline checker on the
// runtime's spine: the whole suite doubles as its workload, so any test
// that introduces a lock-order inversion, an unmatched release, or a
// barrier divergence fails here even if its own assertions pass.
func run(t *testing.T, mk func() exec.Layer, opts Options, body func(rt *Runtime, tc exec.TC)) {
	t.Helper()
	layer := mk()
	if opts.Spine == nil {
		opts.Spine = ompt.NewSpine()
	}
	check := ompt.NewLockCheck(opts.Spine)
	rt := New(layer, opts)
	_, err := layer.Run(func(tc exec.TC) {
		body(rt, tc)
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range check.Violations() {
		t.Errorf("lock discipline: %s", v)
	}
}

func forBothLayers(t *testing.T, opts Options, body func(rt *Runtime, tc exec.TC)) {
	for name, mk := range testLayers() {
		t.Run(name, func(t *testing.T) { run(t, mk, opts, body) })
	}
}

func TestParallelBasics(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var seen [8]atomic.Bool
		var count atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			if w.NumThreads() != 8 {
				t.Errorf("NumThreads = %d", w.NumThreads())
			}
			seen[w.ThreadNum()].Store(true)
			count.Add(1)
		})
		if count.Load() != 8 {
			t.Errorf("ran %d bodies, want 8", count.Load())
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Errorf("thread %d missing", i)
			}
		}
	})
}

func TestParallelSerializedWhenOne(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8}, func(rt *Runtime, tc exec.TC) {
		n := 0
		rt.Parallel(tc, 1, func(w *Worker) {
			if w.NumThreads() != 1 || w.ThreadNum() != 0 {
				t.Errorf("serialized region wrong: %d/%d", w.ThreadNum(), w.NumThreads())
			}
			n++
		})
		if n != 1 {
			t.Errorf("serialized region ran %d times", n)
		}
	})
}

func TestRepeatedRegionsReusePool(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var total atomic.Int64
		for r := 0; r < 20; r++ {
			rt.Parallel(tc, 4, func(w *Worker) { total.Add(1) })
		}
		if total.Load() != 80 {
			t.Errorf("total = %d, want 80", total.Load())
		}
		if got := rt.Regions.Load(); got != 20 {
			t.Errorf("regions = %d", got)
		}
	})
}

func TestVaryingTeamSizes(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		for _, n := range []int{2, 8, 3, 1, 5, 8} {
			var count atomic.Int64
			rt.Parallel(tc, n, func(w *Worker) {
				if w.NumThreads() != n {
					t.Errorf("NumThreads = %d, want %d", w.NumThreads(), n)
				}
				count.Add(1)
			})
			if int(count.Load()) != n {
				t.Errorf("size %d ran %d bodies", n, count.Load())
			}
		}
	})
}

// checkCoverage verifies that a worksharing loop executed every iteration
// exactly once.
func checkCoverage(t *testing.T, hits []atomic.Int32, what string) {
	t.Helper()
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("%s: iteration %d ran %d times", what, i, got)
		}
	}
}

func TestForSchedules(t *testing.T) {
	const iters = 1000
	cases := []ForOpt{
		{Sched: Static},
		{Sched: Static, Chunk: 7},
		{Sched: Dynamic, Chunk: 1},
		{Sched: Dynamic, Chunk: 16},
		{Sched: Guided, Chunk: 1},
		{Sched: Guided, Chunk: 4},
	}
	for name, mk := range testLayers() {
		for _, opt := range cases {
			opt := opt
			label := name + "/" + opt.Sched.String()
			if opt.Chunk > 0 {
				label += "-chunked"
			}
			t.Run(label, func(t *testing.T) {
				run(t, mk, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
					hits := make([]atomic.Int32, iters)
					rt.Parallel(tc, 8, func(w *Worker) {
						w.ForEach(0, iters, opt, func(i int) {
							hits[i].Add(1)
						})
					})
					checkCoverage(t, hits, label)
				})
			})
		}
	}
}

func TestForNonZeroLowerBound(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		hits := make([]atomic.Int32, 100)
		rt.Parallel(tc, 4, func(w *Worker) {
			w.ForEach(40, 100, ForOpt{Sched: Dynamic, Chunk: 3}, func(i int) {
				hits[i].Add(1)
			})
		})
		for i := 0; i < 40; i++ {
			if hits[i].Load() != 0 {
				t.Fatalf("iteration %d below lo executed", i)
			}
		}
		for i := 40; i < 100; i++ {
			if hits[i].Load() != 1 {
				t.Fatalf("iteration %d ran %d times", i, hits[i].Load())
			}
		}
	})
}

func TestForEmptyRange(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		ran := atomic.Int64{}
		rt.Parallel(tc, 4, func(w *Worker) {
			w.ForEach(5, 5, ForOpt{Sched: Static}, func(i int) { ran.Add(1) })
			w.ForEach(10, 3, ForOpt{Sched: Dynamic, Chunk: 2}, func(i int) { ran.Add(1) })
		})
		if ran.Load() != 0 {
			t.Fatalf("empty ranges executed %d iterations", ran.Load())
		}
	})
}

func TestSuccessiveLoopsInOneRegion(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		const loops = 10
		const iters = 64
		hits := make([]atomic.Int32, loops*iters)
		rt.Parallel(tc, 8, func(w *Worker) {
			for l := 0; l < loops; l++ {
				l := l
				w.ForEach(0, iters, ForOpt{Sched: Dynamic, Chunk: 4}, func(i int) {
					hits[l*iters+i].Add(1)
				})
			}
		})
		checkCoverage(t, hits, "successive loops")
	})
}

func TestForNoWaitDoesNotBarrier(t *testing.T) {
	// On the simulator: with NoWait, a thread with no iterations finishes
	// almost immediately even though another thread computes for long.
	layer := exec.NewSimLayer(sim.New(2, 1), simCosts())
	rt := New(layer, Options{MaxThreads: 2, Bind: true})
	var t0done, t1done int64
	_, err := layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 2, func(w *Worker) {
			w.For(0, 2, ForOpt{Sched: Static, NoWait: true}, func(lo, hi int) {
				if w.ThreadNum() == 0 {
					w.TC().Charge(1_000_000)
				}
			})
			if w.ThreadNum() == 0 {
				t0done = w.TC().Now()
			} else {
				t1done = w.TC().Now()
			}
		})
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	if t1done >= t0done {
		t.Fatalf("nowait thread 1 (%d) should finish before thread 0 (%d)", t1done, t0done)
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		counter := 0
		rt.Parallel(tc, 8, func(w *Worker) {
			for k := 0; k < 100; k++ {
				w.Critical("", func() { counter++ })
			}
		})
		if counter != 800 {
			t.Errorf("counter = %d, want 800", counter)
		}
	})
}

func TestNamedCriticalsAreIndependentMutexes(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(2, 1), simCosts())
	rt := New(layer, Options{MaxThreads: 2})
	a := rt.criticalEntry("a")
	b := rt.criticalEntry("b")
	if a == b {
		t.Fatal("different names must map to different mutexes")
	}
	if a != rt.criticalEntry("a") {
		t.Fatal("same name must map to the same mutex")
	}
}

func TestAtomicCounter(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var counter atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			for k := 0; k < 50; k++ {
				w.Atomic(func() { counter.Add(1) })
			}
		})
		if counter.Load() != 400 {
			t.Errorf("counter = %d", counter.Load())
		}
	})
}

func TestSingleRunsOnce(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var singles atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			for k := 0; k < 25; k++ {
				w.Single(false, func() { singles.Add(1) })
			}
		})
		if singles.Load() != 25 {
			t.Errorf("singles = %d, want 25", singles.Load())
		}
	})
}

func TestMasterOnlyThreadZero(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var who atomic.Int64
		who.Store(-1)
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Master(func() { who.Store(int64(w.ThreadNum())) })
			w.Barrier()
		})
		if who.Load() != 0 {
			t.Errorf("master ran on thread %d", who.Load())
		}
	})
}

func TestCopyPrivateBroadcast(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var wrong atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			for k := 0; k < 10; k++ {
				v := w.SingleCopyPrivate(func() any { return k * 100 })
				if v.(int) != k*100 {
					wrong.Add(1)
				}
			}
		})
		if wrong.Load() != 0 {
			t.Errorf("%d wrong copyprivate values", wrong.Load())
		}
	})
}

func TestSectionsEachRunsOnce(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var a, b, c atomic.Int64
		rt.Parallel(tc, 4, func(w *Worker) {
			w.Sections(false,
				func() { a.Add(1) },
				func() { b.Add(1) },
				func() { c.Add(1) },
			)
		})
		if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
			t.Errorf("sections ran %d/%d/%d times", a.Load(), b.Load(), c.Load())
		}
	})
}

func TestOrderedSequence(t *testing.T) {
	for name, mk := range testLayers() {
		for _, sched := range []ForOpt{{Sched: Dynamic, Chunk: 1}, {Sched: Static, Chunk: 2}} {
			sched := sched
			t.Run(name+"/"+sched.Sched.String(), func(t *testing.T) {
				run(t, mk, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
					var mu sync.Mutex
					var order []int
					rt.Parallel(tc, 4, func(w *Worker) {
						w.ForOrdered(0, 40, sched, func(i int, ordered func(func())) {
							ordered(func() {
								mu.Lock()
								order = append(order, i)
								mu.Unlock()
							})
						})
					})
					if len(order) != 40 {
						t.Fatalf("ordered ran %d times", len(order))
					}
					for i, v := range order {
						if v != i {
							t.Fatalf("ordered sequence broken at %d: %v", i, order[:i+1])
						}
					}
				})
			})
		}
	}
}

func TestReduceOps(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var sum, prod, mx, mn float64
		rt.Parallel(tc, 8, func(w *Worker) {
			v := float64(w.ThreadNum() + 1)
			s := w.Reduce(ReduceSum, v)
			p := w.Reduce(ReduceProd, v)
			x := w.Reduce(ReduceMax, v)
			m := w.Reduce(ReduceMin, v)
			w.Master(func() { sum, prod, mx, mn = s, p, x, m })
		})
		if sum != 36 {
			t.Errorf("sum = %v, want 36", sum)
		}
		if prod != 40320 {
			t.Errorf("prod = %v, want 8!", prod)
		}
		if mx != 8 || mn != 1 {
			t.Errorf("max/min = %v/%v", mx, mn)
		}
	})
}

func TestReduceAllThreadsSeeResult(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 6, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var bad atomic.Int64
		rt.Parallel(tc, 6, func(w *Worker) {
			got := w.Reduce(ReduceSum, 1)
			if got != 6 {
				bad.Add(1)
			}
		})
		if bad.Load() != 0 {
			t.Errorf("%d threads saw wrong reduction", bad.Load())
		}
	})
}

func TestLocks(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		l := rt.NewLock()
		counter := 0
		rt.Parallel(tc, 8, func(w *Worker) {
			for k := 0; k < 50; k++ {
				l.Set(w)
				counter++
				l.Unset(w)
			}
		})
		if counter != 400 {
			t.Errorf("counter = %d", counter)
		}
	})
}

func TestNestLock(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		l := rt.NewNestLock()
		counter := 0
		rt.Parallel(tc, 4, func(w *Worker) {
			for k := 0; k < 20; k++ {
				if d := l.Set(w); d != 1 {
					t.Errorf("outer depth = %d", d)
				}
				if d := l.Set(w); d != 2 {
					t.Errorf("inner depth = %d", d)
				}
				counter++
				l.Unset(w)
				l.Unset(w)
			}
		})
		if counter != 80 {
			t.Errorf("counter = %d", counter)
		}
	})
}

func TestTasksAllExecute(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var done atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			w.Master(func() {
				for k := 0; k < 200; k++ {
					w.Task(func(w *Worker) { done.Add(1) })
				}
			})
			w.Barrier()
		})
		if done.Load() != 200 {
			t.Errorf("tasks done = %d, want 200", done.Load())
		}
	})
}

func TestTaskwaitWaitsForChildren(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var violated atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			w.Master(func() {
				var children atomic.Int64
				for k := 0; k < 50; k++ {
					w.Task(func(w *Worker) { children.Add(1) })
				}
				w.Taskwait()
				if children.Load() != 50 {
					violated.Add(1)
				}
			})
			w.Barrier()
		})
		if violated.Load() != 0 {
			t.Error("taskwait returned before children completed")
		}
	})
}

func TestNestedTasks(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var leaves atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			w.Master(func() {
				for k := 0; k < 10; k++ {
					w.Task(func(w *Worker) {
						for j := 0; j < 10; j++ {
							w.Task(func(w *Worker) { leaves.Add(1) })
						}
						w.Taskwait()
					})
				}
			})
			w.Barrier()
		})
		if leaves.Load() != 100 {
			t.Errorf("leaves = %d, want 100", leaves.Load())
		}
	})
}

func TestTaskTreeRecursive(t *testing.T) {
	// The EPCC BENCH_TASK_TREE shape: binary recursion to a fixed depth.
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var leaves atomic.Int64
		var tree func(w *Worker, depth int)
		tree = func(w *Worker, depth int) {
			if depth == 0 {
				leaves.Add(1)
				return
			}
			w.Task(func(w *Worker) { tree(w, depth-1) })
			w.Task(func(w *Worker) { tree(w, depth-1) })
			w.Taskwait()
		}
		rt.Parallel(tc, 8, func(w *Worker) {
			w.Master(func() { tree(w, 7) })
			w.Barrier()
		})
		if leaves.Load() != 128 {
			t.Errorf("leaves = %d, want 128", leaves.Load())
		}
	})
}

func TestTaskIfUndeferred(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 4, Bind: true}, func(rt *Runtime, tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			executedInline := false
			w.TaskIf(false, func(inner *Worker) {
				if inner != w {
					t.Error("undeferred task must run on the creating thread")
				}
				executedInline = true
			})
			if !executedInline {
				t.Error("undeferred task did not run immediately")
			}
			w.Barrier()
		})
	})
}

func TestTasksFromAllThreadsWithStealing(t *testing.T) {
	forBothLayers(t, Options{MaxThreads: 8, Bind: true}, func(rt *Runtime, tc exec.TC) {
		var done atomic.Int64
		rt.Parallel(tc, 8, func(w *Worker) {
			// Imbalanced creation: only even threads create.
			if w.ThreadNum()%2 == 0 {
				for k := 0; k < 40; k++ {
					w.Task(func(w *Worker) {
						w.TC().Charge(1000)
						done.Add(1)
					})
				}
			}
			w.Barrier()
		})
		if done.Load() != 160 {
			t.Errorf("done = %d, want 160", done.Load())
		}
	})
}

func TestParseSchedule(t *testing.T) {
	for _, tt := range []struct {
		in    string
		kind  Schedule
		chunk int
		ok    bool
	}{
		{"static", Static, 0, true},
		{"dynamic,4", Dynamic, 4, true},
		{"GUIDED, 8", Guided, 8, true},
		{"bogus", Static, 0, false},
		{"dynamic,x", Static, 0, false},
	} {
		kind, chunk, err := ParseSchedule(tt.in)
		if tt.ok != (err == nil) {
			t.Fatalf("%q: err = %v", tt.in, err)
		}
		if err == nil && (kind != tt.kind || chunk != tt.chunk) {
			t.Fatalf("%q -> %v,%d", tt.in, kind, chunk)
		}
	}
}

func TestOptionsEnv(t *testing.T) {
	env := map[string]string{"OMP_NUM_THREADS": "12", "OMP_SCHEDULE": "guided,2"}
	var o Options
	if err := o.Env(func(k string) (string, bool) { v, ok := env[k]; return v, ok }); err != nil {
		t.Fatal(err)
	}
	if o.DefaultThreads != 12 || o.Schedule != Guided || o.Chunk != 2 {
		t.Fatalf("opts = %+v", o)
	}
	env["OMP_NUM_THREADS"] = "zap"
	if err := o.Env(func(k string) (string, bool) { v, ok := env[k]; return v, ok }); err == nil {
		t.Fatal("bad OMP_NUM_THREADS must error")
	}
}

func TestSimDeterministicRegion(t *testing.T) {
	runOnce := func() int64 {
		layer := exec.NewSimLayer(sim.New(8, 5), simCosts())
		rt := New(layer, Options{MaxThreads: 8, Bind: true})
		elapsed, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, 8, func(w *Worker) {
				w.ForEach(0, 512, ForOpt{Sched: Dynamic, Chunk: 4}, func(i int) {
					w.TC().Charge(500)
				})
				w.Reduce(ReduceSum, float64(w.ThreadNum()))
			})
			rt.Close(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestSimParallelSpeedsUpCompute(t *testing.T) {
	elapsedFor := func(n int) int64 {
		layer := exec.NewSimLayer(sim.New(8, 5), simCosts())
		rt := New(layer, Options{MaxThreads: 8, Bind: true})
		elapsed, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, n, func(w *Worker) {
				w.ForEach(0, 64, ForOpt{Sched: Static}, func(i int) {
					w.TC().Charge(100_000)
				})
			})
			rt.Close(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	t1, t8 := elapsedFor(1), elapsedFor(8)
	speedup := float64(t1) / float64(t8)
	if speedup < 6 {
		t.Fatalf("speedup on 8 simulated CPUs = %.2f, want > 6", speedup)
	}
}

func TestTreeBarrierCorrectAndFasterAtScale(t *testing.T) {
	run := func(algo BarrierAlgo, threads int) int64 {
		layer := exec.NewSimLayer(sim.New(threads, 3), exec.Costs{
			ThreadSpawnNS: 2000, FutexWaitEntryNS: 300, FutexWakeEntryNS: 300,
			FutexWakeLatencyNS: 1500, FutexWakeStaggerNS: 100,
			AtomicRMWNS: 20, CacheLineXferNS: 45,
		})
		rt := New(layer, Options{MaxThreads: threads, Bind: true, BarrierAlgo: algo})
		var count atomic.Int64
		elapsed, err := layer.Run(func(tc exec.TC) {
			rt.Parallel(tc, threads, func(w *Worker) {
				for r := 0; r < 30; r++ {
					count.Add(1)
					w.Barrier()
				}
			})
			rt.Close(tc)
		})
		if err != nil {
			t.Fatal(err)
		}
		if count.Load() != int64(threads*30) {
			t.Fatalf("%v barrier lost arrivals: %d", algo, count.Load())
		}
		return elapsed
	}
	flat, tree := run(BarrierFlat, 64), run(BarrierTree, 64)
	if tree >= flat {
		t.Fatalf("tree barrier (%d) must beat flat (%d) at 64 threads", tree, flat)
	}
	// At small scale the difference must not invert correctness.
	run(BarrierTree, 3)
	run(BarrierTree, 2)
}

func TestTracerRecordsRegionsAndLoops(t *testing.T) {
	tr := trace.New()
	layer := exec.NewSimLayer(sim.New(4, 1), simCosts())
	rt := New(layer, Options{MaxThreads: 4, Bind: true, Tracer: tr})
	_, err := layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 4, func(w *Worker) {
			w.ForEach(0, 64, ForOpt{Sched: Dynamic, Chunk: 4}, func(i int) {
				w.TC().Charge(500)
			})
		})
		rt.Close(tc)
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	var regions, loops int
	for _, e := range events {
		switch {
		case e.Name == "parallel#1":
			regions++
			if e.Dur <= 0 {
				t.Fatal("region span without duration")
			}
		case e.Name == "for/dynamic":
			loops++
		}
	}
	if regions != 1 {
		t.Fatalf("region spans = %d", regions)
	}
	if loops != 4 {
		t.Fatalf("loop spans = %d, want one per thread", loops)
	}
}
