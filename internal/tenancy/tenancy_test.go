package tenancy

import (
	"fmt"
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/ompt"
	"github.com/interweaving/komp/internal/places"
	"github.com/interweaving/komp/internal/sim"
)

func costs() exec.Costs {
	return exec.Costs{
		ThreadSpawnNS: 2000, ThreadJoinNS: 300,
		FutexWaitEntryNS: 100, FutexWakeEntryNS: 100,
		FutexWakeLatencyNS: 300, FutexWakeStaggerNS: 30,
		AtomicRMWNS: 20, CacheLineXferNS: 40, MallocNS: 100,
	}
}

func flatPlaces(t *testing.T, n int) *places.Partition {
	t.Helper()
	p, err := places.Parse("", places.Flat(n))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseQueue(t *testing.T) {
	for _, tc := range []struct {
		in    string
		depth int
		pol   Policy
	}{
		{"8", 8, PolicyPark},
		{"0", 0, PolicyPark},
		{"16,park", 16, PolicyPark},
		{"4,reject", 4, PolicyReject},
		{" 4 , reject ", 4, PolicyReject},
	} {
		depth, pol, err := ParseQueue(tc.in)
		if err != nil {
			t.Errorf("ParseQueue(%q): %v", tc.in, err)
			continue
		}
		if depth != tc.depth || pol != tc.pol {
			t.Errorf("ParseQueue(%q) = (%d, %v), want (%d, %v)", tc.in, depth, pol, tc.depth, tc.pol)
		}
	}
	for _, bad := range []string{"", "-1", "x", "4,drop", "4,park,extra"} {
		if _, _, err := ParseQueue(bad); err == nil {
			t.Errorf("ParseQueue(%q): want error", bad)
		}
	}
	var c Config
	env := func(k string) (string, bool) {
		if k == "KOMP_TENANCY_QUEUE" {
			return "7,reject", true
		}
		return "", false
	}
	if err := c.Env(env); err != nil {
		t.Fatal(err)
	}
	if c.QueueDepth != 7 || c.Policy != PolicyReject {
		t.Errorf("Env: QueueDepth=%d Policy=%v, want 7 reject", c.QueueDepth, c.Policy)
	}
}

// TestAdmissionParkAndReject: with one admission slot and a queue depth
// of one, three deterministic concurrent submitters must resolve as one
// admitted, one parked-then-admitted, one rejected.
func TestAdmissionParkAndReject(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(4, 7), costs())
	var st Stats
	if _, err := layer.Run(func(tc exec.TC) {
		svc := New(tc, layer, Config{Workers: 3, MaxInflight: 1, QueueDepth: 1})
		a, b, c := svc.Tenant(2), svc.Tenant(2), svc.Tenant(2)
		long := func(w *omp.Worker) { w.TC().Charge(1_000_000) }
		var errB, errC error
		hb := tc.Spawn("tenant-b", 1, func(btc exec.TC) {
			btc.Sleep(10_000) // A holds the slot: B parks
			errB = b.Parallel(btc, 2, long)
		})
		hc := tc.Spawn("tenant-c", 2, func(ctc exec.TC) {
			ctc.Sleep(20_000) // slot held AND queue full: C is shed
			errC = c.Parallel(ctc, 2, long)
		})
		if err := a.Parallel(tc, 2, long); err != nil {
			t.Errorf("first submission: %v, want admitted", err)
		}
		hb.Join(tc)
		hc.Join(tc)
		if errB != nil {
			t.Errorf("parked submission: %v, want admitted after the slot freed", errB)
		}
		if errC != ErrRejected {
			t.Errorf("over-queue submission: %v, want ErrRejected", errC)
		}
		st = svc.Stats()
		svc.Shutdown(tc)
	}); err != nil {
		t.Fatal(err)
	}
	want := Stats{Admitted: 2, Parked: 1, Rejected: 1}
	if st != want {
		t.Errorf("Stats = %+v, want %+v", st, want)
	}
}

// TestPolicyReject: under PolicyReject a saturated service sheds
// immediately — nothing ever parks.
func TestPolicyReject(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(4, 7), costs())
	var st Stats
	if _, err := layer.Run(func(tc exec.TC) {
		svc := New(tc, layer, Config{Workers: 3, MaxInflight: 1, QueueDepth: 8, Policy: PolicyReject})
		a, b := svc.Tenant(2), svc.Tenant(2)
		var errB error
		hb := tc.Spawn("tenant-b", 1, func(btc exec.TC) {
			btc.Sleep(10_000)
			errB = b.Parallel(btc, 2, func(w *omp.Worker) {})
		})
		if err := a.Parallel(tc, 2, func(w *omp.Worker) { w.TC().Charge(1_000_000) }); err != nil {
			t.Errorf("first submission: %v, want admitted", err)
		}
		hb.Join(tc)
		if errB != ErrRejected {
			t.Errorf("saturated submission: %v, want ErrRejected", errB)
		}
		st = svc.Stats()
		svc.Shutdown(tc)
	}); err != nil {
		t.Fatal(err)
	}
	if st.Parked != 0 || st.Rejected != 1 {
		t.Errorf("Stats = %+v, want Parked 0, Rejected 1", st)
	}
}

// TestRebalanceWorkConserving: tenant B runs once and goes idle, its hot
// team parking 3 leased workers. Tenant A then asks for the full
// machine: the first fork comes up short (B's idle cache starves it),
// which triggers the rebalance at A's join, and A's second fork must get
// every worker back. Without the work-conserving rebalance the second
// width stays shrunken forever — B's idle cache pins capacity no one is
// using.
func TestRebalanceWorkConserving(t *testing.T) {
	layer := exec.NewSimLayer(sim.New(8, 7), costs())
	var widths []int
	var st Stats
	if _, err := layer.Run(func(tc exec.TC) {
		svc := New(tc, layer, Config{Workers: 7})
		a, b := svc.Tenant(8), svc.Tenant(4)
		if err := b.Parallel(tc, 4, func(w *omp.Worker) { w.TC().Charge(10_000) }); err != nil {
			t.Fatal(err)
		}
		wide := func(w *omp.Worker) {
			w.Master(func() { widths = append(widths, w.NumAlive()) })
			w.TC().Charge(10_000)
		}
		for r := 0; r < 2; r++ {
			if err := a.Parallel(tc, 8, wide); err != nil {
				t.Fatal(err)
			}
		}
		st = svc.Stats()
		svc.Shutdown(tc)
	}); err != nil {
		t.Fatal(err)
	}
	if len(widths) != 2 || widths[0] >= 8 || widths[1] != 8 {
		t.Errorf("team widths = %v, want a shrunken first region and a full 8-wide second", widths)
	}
	if st.Rebalances == 0 {
		t.Error("no rebalance ran despite a starved fork")
	}
}

// --- the isolation matrix -------------------------------------------

// matrixScenario is one way tenant A can blow up while tenant B must
// not notice: cancel, panic-in-task, deadline expiry, fault shrink.
type matrixScenario struct {
	name string
	mods func(*omp.Options)
	// driveA runs tenant A's faulting workload on its own thread.
	driveA func(t *testing.T, atc exec.TC, svc *Service, a *Tenant)
	// wantACancel: the scenario must leave at least one Cancel event in
	// tenant A's OMPT stream (and, always, none in B's).
	wantACancel bool
}

// spinUntilCancelled loops at cancellation points until the region's
// cancel flag is observed (bounded so a broken flag fails, not hangs).
func spinUntilCancelled(t *testing.T, w *omp.Worker) {
	for i := 0; ; i++ {
		if w.CancellationPoint(omp.CancelParallel) {
			return
		}
		w.TC().Charge(10_000)
		if i%1024 == 1023 {
			w.TC().Yield()
		}
		if i > 10_000_000 {
			t.Error("cancellation never observed")
			return
		}
	}
}

func matrixScenarios() []matrixScenario {
	return []matrixScenario{
		{
			name: "cancel",
			driveA: func(t *testing.T, atc exec.TC, svc *Service, a *Tenant) {
				err := a.Parallel(atc, 3, func(w *omp.Worker) {
					if w.ThreadNum() == 0 {
						w.TC().Charge(50_000)
						if !w.Cancel(omp.CancelParallel) {
							t.Error("tenant A Cancel = false with the ICV on")
						}
						return
					}
					spinUntilCancelled(t, w)
				})
				if err != nil {
					t.Errorf("tenant A: %v", err)
				}
			},
			wantACancel: true,
		},
		{
			name: "panic-in-task",
			driveA: func(t *testing.T, atc exec.TC, svc *Service, a *Tenant) {
				caught := false
				err := a.Parallel(atc, 3, func(w *omp.Worker) {
					w.Master(func() {
						defer func() {
							if r := recover(); r != nil {
								if r != "tenant A boom" {
									t.Errorf("re-raised %v, want tenant A boom", r)
								}
								caught = true
							}
						}()
						w.Taskgroup(func(gw *omp.Worker) {
							for i := 0; i < 16; i++ {
								gw.Task(func(tw *omp.Worker) {
									tw.TC().Charge(20_000)
									if i == 1 {
										panic("tenant A boom")
									}
								})
							}
						})
					})
				})
				if err != nil {
					t.Errorf("tenant A: %v", err)
				}
				if !caught {
					t.Error("tenant A's task panic was not re-raised at its taskgroup")
				}
			},
		},
		{
			name: "deadline",
			mods: func(o *omp.Options) { o.RegionDeadlineNS = 300_000 },
			driveA: func(t *testing.T, atc exec.TC, svc *Service, a *Tenant) {
				err := a.Parallel(atc, 3, func(w *omp.Worker) {
					spinUntilCancelled(t, w)
				})
				if err != nil {
					t.Errorf("tenant A: %v", err)
				}
			},
			wantACancel: true,
		},
		{
			name: "fault-shrink",
			mods: func(o *omp.Options) { o.Resilient = true },
			driveA: func(t *testing.T, atc exec.TC, svc *Service, a *Tenant) {
				// CPU 2 belongs to tenant A's shard: dooming whatever is
				// bound there mid-region shrinks A's team, never B's.
				stop := atc.(exec.Alarmer).Alarm(400_000, func(exec.TC) {
					svc.Pool().OfflineCurrent(2)
				})
				defer stop()
				const iters = 120
				cov := make([]int, iters)
				err := a.Parallel(atc, 3, func(w *omp.Worker) {
					w.ForEach(0, iters, omp.ForOpt{Sched: omp.Dynamic, Chunk: 2}, func(i int) {
						w.TC().Charge(20_000)
						cov[i]++
					})
				})
				if err != nil {
					t.Errorf("tenant A: %v", err)
				}
				for i, c := range cov {
					if c != 1 {
						t.Errorf("tenant A iteration %d ran %d times, want exactly once", i, c)
					}
				}
			},
		},
	}
}

// runIsolation runs one matrix scenario: tenant A misbehaving on shard 0
// while tenant B steadily works on shard 1. It returns the elapsed time
// and the shared OMPT stream for the determinism test.
func runIsolation(t *testing.T, layer exec.Layer, sc matrixScenario) (int64, []ompt.Event) {
	t.Helper()
	sp := ompt.NewSpine()
	rec := ompt.NewRecorder(sp, ompt.ParallelBegin, ompt.ParallelEnd, ompt.Cancel)
	const regionsB, itersB = 6, 60
	covB := make([]int, itersB)
	var bRegions int64
	elapsed, err := layer.Run(func(tc exec.TC) {
		svc := New(tc, layer, Config{
			Workers: 6, Shards: 2, Places: flatPlaces(t, 8),
			Base: omp.Options{Cancellation: true, Bind: true, Spine: sp},
		})
		var a *Tenant
		if sc.mods != nil {
			a = svc.Tenant(3, sc.mods)
		} else {
			a = svc.Tenant(3)
		}
		b := svc.Tenant(3)
		ha := tc.Spawn("tenant-a", 0, func(atc exec.TC) {
			sc.driveA(t, atc, svc, a)
		})
		hb := tc.Spawn("tenant-b", 4, func(btc exec.TC) {
			for r := 0; r < regionsB; r++ {
				if err := b.Parallel(btc, 3, func(w *omp.Worker) {
					w.ForEach(0, itersB, omp.ForOpt{}, func(i int) {
						w.TC().Charge(5_000)
						covB[i]++
					})
				}); err != nil {
					t.Errorf("tenant B region %d: %v", r, err)
				}
			}
		})
		ha.Join(tc)
		hb.Join(tc)
		bRegions = b.Runtime().Regions.Load()
		if dr := svc.Pool().DoubleReleases(); dr != 0 {
			t.Errorf("DoubleReleases = %d, want 0", dr)
		}
		svc.Shutdown(tc)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Tenant B's work, accounting and OMPT stream must be exactly what a
	// solo run would produce: every iteration of every region ran once.
	for i, c := range covB {
		if c != regionsB {
			t.Errorf("tenant B iteration %d ran %d times, want %d", i, c, regionsB)
		}
	}
	if bRegions != regionsB {
		t.Errorf("tenant B accounted %d regions, want %d", bRegions, regionsB)
	}
	events := rec.Events()
	bBegins, bCancels, aCancels := 0, 0, 0
	for _, ev := range events {
		switch {
		case ev.Tenant == 2 && ev.Kind == ompt.ParallelBegin:
			bBegins++
		case ev.Tenant == 2 && ev.Kind == ompt.Cancel:
			bCancels++
		case ev.Tenant == 1 && ev.Kind == ompt.Cancel:
			aCancels++
		}
	}
	if bBegins != regionsB {
		t.Errorf("tenant B's OMPT stream has %d ParallelBegin, want %d", bBegins, regionsB)
	}
	if bCancels != 0 {
		t.Errorf("tenant B's OMPT stream has %d Cancel events, want 0 (leaked from tenant A)", bCancels)
	}
	if sc.wantACancel && aCancels == 0 {
		t.Error("tenant A's OMPT stream has no Cancel event: the scenario did not fire")
	}
	return elapsed, events
}

// TestIsolationMatrix: tenant A's cancel, panic-in-task, deadline expiry
// and fault-plan shrink must never perturb tenant B — on both execution
// layers (run with -race on the real layer).
func TestIsolationMatrix(t *testing.T) {
	for _, sc := range matrixScenarios() {
		t.Run("sim/"+sc.name, func(t *testing.T) {
			runIsolation(t, exec.NewSimLayer(sim.New(8, 11), costs()), sc)
		})
		t.Run("real/"+sc.name, func(t *testing.T) {
			runIsolation(t, exec.NewRealLayer(8), sc)
		})
	}
}

// TestIsolationTraceDeterministic: the same seeded simulation of a full
// isolation scenario must produce byte-identical traces and identical
// virtual elapsed time across runs.
func TestIsolationTraceDeterministic(t *testing.T) {
	sc := matrixScenarios()[0]
	e1, ev1 := runIsolation(t, exec.NewSimLayer(sim.New(8, 11), costs()), sc)
	e2, ev2 := runIsolation(t, exec.NewSimLayer(sim.New(8, 11), costs()), sc)
	if e1 != e2 {
		t.Errorf("elapsed differs across same-seed runs: %d vs %d", e1, e2)
	}
	s1, s2 := fmt.Sprintf("%v", ev1), fmt.Sprintf("%v", ev2)
	if s1 != s2 {
		t.Error("OMPT traces differ across same-seed runs")
	}
}
