// Package tenancy is the multi-tenant policy layer over the OpenMP
// runtime: one shared worker pool (omp.Pool), many independent tenants,
// each with a komp-style handle, concurrently submitting parallel
// regions and task DAGs. It converts the runtime from a library one
// caller owns into a service — the ROADMAP's production-scale shape,
// where thousands of clients share one machine's worth of workers.
//
// The service adds three policies the single-owner runtime never
// needed, all built from mechanisms that already exist:
//
//   - Admission control: a bounded queue with backpressure
//     (KOMP_TENANCY_QUEUE). At most MaxInflight regions run at once;
//     excess submitters park on a futex gate (reported to the real
//     layer's stall watchdog as idle, not stalled) up to QueueDepth
//     deep, beyond which submissions are rejected.
//
//   - Placement sharding: tenants are dealt disjoint sub-partitions of
//     the place set (places.Partition.Shard), so their teams land on
//     disjoint sockets by construction instead of interleaving across
//     the machine and serializing on shared CPUs.
//
//   - Work-conserving rebalance: when a fork finds the pool short
//     (starved latch), idle tenants' cached hot teams are drained and
//     their leases returned, so parked capacity flows to whoever is
//     busy. The hot-team caches are claim-safe — a drained team is
//     owned exclusively by the drainer — so rebalance never races a
//     tenant waking up.
//
// Isolation comes from the structure: each tenant is a full
// omp.Runtime — its own cancel flags, deques, hot-team caches, region
// ids and OMPT tenant id — sharing only the leased workers, whose
// per-region state is reset at every fork.
package tenancy

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/places"
)

// Policy selects what a submission does when the service is saturated.
type Policy int

// Saturation policies.
const (
	// PolicyPark (the default): park in the admission queue until a
	// running region completes, rejecting only when the queue itself is
	// full (QueueDepth waiters).
	PolicyPark Policy = iota
	// PolicyReject: reject immediately whenever MaxInflight regions are
	// already running — no queueing, pure load shedding.
	PolicyReject
)

func (p Policy) String() string {
	if p == PolicyReject {
		return "reject"
	}
	return "park"
}

// ErrRejected is returned by Tenant.Parallel when admission control
// sheds the submission (queue full, or PolicyReject while saturated).
var ErrRejected = errors.New("tenancy: region rejected by admission control")

// Config configures a Service.
type Config struct {
	// Workers is the shared pool's leasable worker count (omp.Pool).
	Workers int
	// MaxInflight caps how many admitted regions may run concurrently.
	// 0 disables admission control: every submission runs immediately
	// and the queue fields are unused.
	MaxInflight int
	// QueueDepth bounds the admission queue under PolicyPark: at most
	// this many submissions park awaiting admission; further ones are
	// rejected (the KOMP_TENANCY_QUEUE depth). Default 64.
	QueueDepth int
	// Policy is the saturation policy (KOMP_TENANCY_QUEUE's
	// ",park"/",reject" suffix).
	Policy Policy
	// Shards deals tenants round-robin onto disjoint sub-partitions of
	// Places (tenant i gets Places.Shard(i mod Shards, Shards)). 0 or 1
	// leaves every tenant on the full partition.
	Shards int
	// Places is the place partition sharding splits (required when
	// Shards > 1; typically the sockets partition of the machine).
	Places *places.Partition
	// Base is the template for each tenant's runtime options: pthread
	// impl, spine, ICVs. The service overrides MaxThreads, Tenant,
	// SharedPool and — when sharding — Places per tenant.
	Base omp.Options
}

// ParseQueue parses a KOMP_TENANCY_QUEUE value: "depth", "depth,park"
// or "depth,reject" (depth >= 0).
func ParseQueue(s string) (depth int, pol Policy, err error) {
	parts := strings.SplitN(strings.TrimSpace(s), ",", 2)
	depth, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil || depth < 0 {
		return 0, 0, fmt.Errorf("tenancy: KOMP_TENANCY_QUEUE=%q: want depth[,park|reject] with a non-negative depth", s)
	}
	if len(parts) == 2 {
		switch strings.TrimSpace(strings.ToLower(parts[1])) {
		case "park":
			pol = PolicyPark
		case "reject":
			pol = PolicyReject
		default:
			return 0, 0, fmt.Errorf("tenancy: KOMP_TENANCY_QUEUE=%q: unknown policy %q (want park or reject)", s, parts[1])
		}
	}
	return depth, pol, nil
}

// Env reads the service's environment variables (KOMP_TENANCY_QUEUE)
// from a lookup function, the same plumbing shape as omp.Options.Env.
func (c *Config) Env(lookup func(string) (string, bool)) error {
	if v, ok := lookup("KOMP_TENANCY_QUEUE"); ok {
		depth, pol, err := ParseQueue(v)
		if err != nil {
			return err
		}
		c.QueueDepth, c.Policy = depth, pol
	}
	return nil
}

// Service is the shared-pool scheduler: it owns the worker pool, admits
// regions, and rebalances leases between tenants.
type Service struct {
	layer exec.Layer
	pool  *omp.Pool
	cfg   Config

	// gate is the admission futex: parked submitters wait on its
	// generation; every region completion bumps it and wakes all, and
	// the woken re-contend under mu (deterministic on the simulator).
	gate exec.Word

	mu       sync.Mutex
	inflight int
	queued   int
	tenants  []*Tenant

	// Counters (service-lifetime totals).
	admitted   atomic.Int64
	parked     atomic.Int64
	rejected   atomic.Int64
	rebalances atomic.Int64
}

// New creates a service and its shared worker pool on layer; tc is only
// used to spawn the pool's worker threads.
func New(tc exec.TC, layer exec.Layer, cfg Config) *Service {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Shards > 1 && cfg.Places == nil {
		panic("tenancy: Config.Shards set without Config.Places")
	}
	if cfg.Places != nil && cfg.Shards > cfg.Places.NumPlaces() {
		// More shards than places: shrink to what the machine can
		// actually partition (a 1-place machine just shares).
		cfg.Shards = cfg.Places.NumPlaces()
	}
	pool := omp.NewSharedPool(tc, layer, omp.PoolOptions{
		Workers:     cfg.Workers,
		PthreadImpl: cfg.Base.PthreadImpl,
	})
	return &Service{layer: layer, pool: pool, cfg: cfg}
}

// Pool returns the shared worker pool.
func (s *Service) Pool() *omp.Pool { return s.pool }

// Tenant creates a new tenant: an independent runtime (own ICVs, cancel
// flags, deques, hot-team caches, OMPT tenant id) leasing workers from
// the shared pool. threads caps the tenant's team sizes; mod functions
// may adjust the tenant's options before the runtime is built.
func (s *Service) Tenant(threads int, mod ...func(*omp.Options)) *Tenant {
	s.mu.Lock()
	id := len(s.tenants) + 1
	s.mu.Unlock()

	opts := s.cfg.Base
	opts.MaxThreads = threads
	opts.Tenant = int32(id)
	opts.SharedPool = s.pool
	if s.cfg.Shards > 1 {
		// Place-partition sharding: tenant i's teams are confined to
		// shard i mod n — disjoint sockets by construction.
		opts.Places = s.cfg.Places.Shard((id-1)%s.cfg.Shards, s.cfg.Shards)
		opts.PlacesSpec = ""
		if opts.ProcBind == places.BindDefault {
			opts.ProcBind = places.BindClose
		}
		opts.Bind = true
	} else if opts.Places == nil && s.cfg.Places != nil {
		opts.Places = s.cfg.Places
	}
	for _, m := range mod {
		m(&opts)
	}
	t := &Tenant{ID: id, svc: s, rt: omp.New(s.layer, opts)}
	s.mu.Lock()
	s.tenants = append(s.tenants, t)
	s.mu.Unlock()
	return t
}

// Tenant is one client's handle on the service.
type Tenant struct {
	ID  int
	svc *Service
	rt  *omp.Runtime
	// active counts this tenant's submissions in flight (parked or
	// running): the rebalance skips tenants with active > 0.
	active atomic.Int32
}

// Runtime returns the tenant's runtime, for constructs beyond Parallel.
func (t *Tenant) Runtime() *omp.Runtime { return t.rt }

// Parallel submits one parallel region through admission control and
// runs it to completion (including the implicit join barrier) on the
// tenant's runtime. It returns ErrRejected — without running fn — when
// the service sheds the submission.
func (t *Tenant) Parallel(tc exec.TC, n int, fn func(*omp.Worker)) error {
	s := t.svc
	t.active.Add(1)
	if !s.admit(tc) {
		t.active.Add(-1)
		s.rejected.Add(1)
		return ErrRejected
	}
	s.admitted.Add(1)
	t.rt.Parallel(tc, n, fn)
	t.active.Add(-1)
	s.leave(tc)
	return nil
}

// Close releases the tenant's cached teams and leases back to the pool.
// The shared pool keeps running; Service.Shutdown stops it.
func (t *Tenant) Close(tc exec.TC) { t.rt.Close(tc) }

// admit blocks (or rejects) until the submission may run.
func (s *Service) admit(tc exec.TC) bool {
	if s.cfg.MaxInflight <= 0 {
		s.mu.Lock()
		s.inflight++
		s.mu.Unlock()
		return true
	}
	s.mu.Lock()
	for s.inflight >= s.cfg.MaxInflight {
		if s.cfg.Policy == PolicyReject || s.queued >= s.cfg.QueueDepth {
			s.mu.Unlock()
			return false
		}
		s.queued++
		s.parked.Add(1)
		gen := s.gate.Load()
		s.mu.Unlock()
		// Park awaiting admission. The park is reported to the layer's
		// stall watchdog as idle (IdlePark): a saturated queue can sit
		// still for a whole watchdog period without being a stall.
		done := s.idlePark()
		tc.FutexWait(&s.gate, gen)
		done()
		s.mu.Lock()
		s.queued--
	}
	s.inflight++
	s.mu.Unlock()
	return true
}

// leave retires a completed region: wakes the admission queue and, if
// some fork meanwhile found the pool short, rebalances idle tenants'
// leases back to it.
func (s *Service) leave(tc exec.TC) {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
	s.gate.Add(1)
	tc.FutexWake(&s.gate, -1)
	if s.pool.TakeStarved() {
		s.rebalance()
	}
}

// rebalance is the work-conserving path: every tenant with no
// submission in flight has its cached hot teams drained and their
// worker leases returned to the pool, so a busy tenant's next fork
// leases them instead of shrinking. The caches are claim-safe, so a
// tenant waking up mid-drain just rebuilds — correctness never depends
// on the idleness heuristic.
func (s *Service) rebalance() {
	s.mu.Lock()
	tenants := append([]*Tenant(nil), s.tenants...)
	s.mu.Unlock()
	for _, tn := range tenants {
		if tn.active.Load() == 0 {
			tn.rt.ReleaseCachedTeams()
		}
	}
	s.rebalances.Add(1)
}

func (s *Service) idlePark() func() {
	if ip, ok := s.layer.(exec.IdleParker); ok {
		return ip.IdlePark()
	}
	return func() {}
}

// Stats is a snapshot of the service's counters.
type Stats struct {
	Admitted   int64 // regions that ran
	Parked     int64 // submissions that waited in the admission queue
	Rejected   int64 // submissions shed by backpressure
	Rebalances int64 // idle-tenant lease reclaims
	Inflight   int   // regions running now
	Queued     int   // submissions parked now
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Admitted:   s.admitted.Load(),
		Parked:     s.parked.Load(),
		Rejected:   s.rejected.Load(),
		Rebalances: s.rebalances.Load(),
		Inflight:   s.inflight,
		Queued:     s.queued,
	}
}

// Shutdown closes every tenant's runtime (releasing cached leases) and
// stops the shared pool's workers. On the simulator it must run before
// the layer's Run can return.
func (s *Service) Shutdown(tc exec.TC) {
	s.mu.Lock()
	tenants := append([]*Tenant(nil), s.tenants...)
	s.mu.Unlock()
	for _, tn := range tenants {
		tn.rt.Close(tc)
	}
	s.pool.Shutdown(tc)
}
