// Package linuxsim models the Linux user-level execution environment the
// paper compares against (§2.2): a tickless 5.x kernel with demand-paged
// 4 KiB pages (THP set to madvise, so unmadvised OpenMP heaps stay on
// small pages), futex-based blocking through the syscall boundary, and
// the residual OS noise of a general-purpose kernel (daemons, kworkers,
// RCU, timer reprogramming).
//
// Only the costs of this environment matter to the figures, so the
// package provides the Linux primitive cost table, the Linux noise model,
// and the demand-paged address-space constructor.
package linuxsim

import (
	"math/rand"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/memsim"
	"github.com/interweaving/komp/internal/sim"
)

// PageFaultNS is the cost of a minor fault: trap, allocate, zero 4 KiB,
// map, return.
const PageFaultNS = 2500

// Costs returns the Linux primitive cost table for a machine. Fixed
// hardware costs (trap entry) do not depend on the clock; instruction-
// path costs scale with the machine's clock rate relative to a 2.1 GHz
// reference (the Xeon Phi's slow in-order cores make user-level runtime
// code proportionally slower).
func Costs(m *machine.Machine) exec.Costs {
	scale := func(ns float64) int64 { return int64(ns * 2.1 / m.GHz) }
	crossSocket := int64(1)
	if m.Sockets > 1 {
		crossSocket = 3 // cross-socket cacheline transfer multiplier
	}
	return exec.Costs{
		// pthread_create + stack mmap + first dispatch.
		ThreadSpawnNS: 18_000,
		ThreadExitNS:  2_000,
		ThreadJoinNS:  scale(900),

		// futex(2): syscall entry/exit, hash bucket, plist; wake-to-run
		// includes scheduler wakeup, possible IPI, and context switch.
		FutexWaitEntryNS:   scale(420),
		FutexWakeEntryNS:   scale(380),
		FutexWakeLatencyNS: 2_600,
		FutexWakeStaggerNS: scale(140) * crossSocket,

		AtomicRMWNS:     scale(22),
		CacheLineXferNS: 45 * crossSocket,
		YieldNS:         scale(650),

		MallocNS: scale(160),
		FreeNS:   scale(120),

		TLSAccessNS:    scale(4),
		SyscallExtraNS: scale(400),
	}
}

// Noise is the Linux interference model: per-CPU random housekeeping
// preemptions (kworkers, RCU callbacks, timer reprogramming) plus a small
// multiplicative jitter. CPU 0 additionally absorbs unsteered device
// interrupts.
type Noise struct {
	// DaemonIntervalNS is the mean interval between housekeeping events
	// on each CPU.
	DaemonIntervalNS int64
	// DaemonCostNS is the mean cost of one event.
	DaemonCostNS int64
	// JitterFrac is the maximum multiplicative jitter per segment.
	JitterFrac float64
	// CPU0ExtraNS is additional per-event cost on CPU 0.
	CPU0ExtraNS int64
}

// NewNoise returns the default Linux noise model.
func NewNoise(m *machine.Machine) *Noise {
	return &Noise{
		DaemonIntervalNS: 4 * int64(sim.Millisecond),
		DaemonCostNS:     11 * int64(sim.Microsecond),
		JitterFrac:       0.004,
		CPU0ExtraNS:      6 * int64(sim.Microsecond),
	}
}

// Extend implements sim.NoiseModel.
func (n *Noise) Extend(rng *rand.Rand, cpu int, start, d sim.Time) sim.Time {
	if d <= 0 {
		return start + d
	}
	exp := float64(d) / float64(n.DaemonIntervalNS)
	count := int64(exp)
	if rng.Float64() < exp-float64(count) {
		count++
	}
	var stolen sim.Time
	for i := int64(0); i < count; i++ {
		// Event costs vary 0.5x..1.5x of the mean.
		c := n.DaemonCostNS/2 + rng.Int63n(n.DaemonCostNS)
		if cpu == 0 {
			c += n.CPU0ExtraNS
		}
		stolen += c
	}
	jitter := sim.Time(float64(d) * n.JitterFrac * rng.Float64())
	return start + d + stolen + jitter
}

// NewAddressSpace returns the demand-paged 4 KiB Linux address space with
// first-touch NUMA placement (the Linux default).
func NewAddressSpace(m *machine.Machine) *memsim.AddressSpace {
	return memsim.NewAddressSpace(m, memsim.Demand, 4<<10, memsim.PlaceFirstTouch, PageFaultNS)
}

// NewSim builds the simulator for a Linux run: machine CPUs, Linux noise.
func NewSim(m *machine.Machine, seed int64) *sim.Sim {
	return NewSimEQ(m, seed, sim.EQDefault)
}

// NewSimEQ is NewSim with an explicit event-queue algorithm (the
// KOMP_SIM_EQ ICV, plumbed down from core.Config).
func NewSimEQ(m *machine.Machine, seed int64, eq sim.EQAlgo) *sim.Sim {
	s := sim.NewEQ(m.NumCPUs(), seed, eq)
	s.SetNoise(NewNoise(m))
	return s
}

// NewLayer builds the complete Linux execution layer.
func NewLayer(m *machine.Machine, seed int64) *exec.SimLayer {
	return exec.NewSimLayer(NewSim(m, seed), Costs(m))
}
