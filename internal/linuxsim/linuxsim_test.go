package linuxsim

import (
	"testing"

	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
)

func TestCostsScaleWithClock(t *testing.T) {
	phi := Costs(machine.PHI())    // 1.3 GHz
	xeon := Costs(machine.XEON8()) // 2.1 GHz
	if phi.FutexWaitEntryNS <= xeon.FutexWaitEntryNS {
		t.Fatal("instruction-path costs must be higher on the slower PHI cores")
	}
	if xeon.CacheLineXferNS <= phi.CacheLineXferNS {
		t.Fatal("cross-socket cacheline transfers must cost more on 8XEON")
	}
}

func TestNoiseStealsTime(t *testing.T) {
	m := machine.PHI()
	// A 100ms compute must be stretched by housekeeping noise.
	l := NewLayer(m, 3)
	elapsed, err := l.Run(func(tc exec.TC) { tc.Charge(100_000_000) })
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 100_000_000 {
		t.Fatal("Linux noise must stretch compute")
	}
	// ~25 events x ~17us + jitter: well under 1%.
	if float64(elapsed) > 100_000_000*1.02 {
		t.Fatalf("noise unreasonably large: %d", elapsed)
	}
}

func TestNoiseVariesAcrossSeeds(t *testing.T) {
	m := machine.PHI()
	run := func(seed int64) int64 {
		l := NewLayer(m, seed)
		e, err := l.Run(func(tc exec.TC) { tc.Charge(50_000_000) })
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if run(1) == run(2) {
		t.Fatal("noise must vary across seeds (jitter is the point)")
	}
	if run(5) != run(5) {
		t.Fatal("same seed must reproduce exactly")
	}
}

func TestAddressSpaceIsDemand4K(t *testing.T) {
	as := NewAddressSpace(machine.PHI())
	r := as.Alloc("heap", 64<<10, 0)
	if cost := as.TouchAll(r, 0); cost != 16*PageFaultNS {
		t.Fatalf("fault cost = %v, want %v", cost, 16*PageFaultNS)
	}
}

func TestCPU0CarriesMoreNoise(t *testing.T) {
	m := machine.PHI()
	n := NewNoise(m)
	s := NewSim(m, 9)
	rng := s.RNG()
	var cpu0, cpu5 int64
	for i := 0; i < 50; i++ {
		cpu0 += n.Extend(rng, 0, 0, 10_000_000) - 10_000_000
		cpu5 += n.Extend(rng, 5, 0, 10_000_000) - 10_000_000
	}
	if cpu0 <= cpu5 {
		t.Fatalf("CPU0 noise %d must exceed other CPUs' %d (unsteered device IRQs)", cpu0, cpu5)
	}
}
