module github.com/interweaving/komp

go 1.22
