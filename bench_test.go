package komp

// One benchmark per table and figure of the paper's evaluation (§6).
// Each figure regenerates deterministically on the simulated machines;
// a single iteration is the full-fidelity regeneration, so `go test
// -bench=.` runs each exactly once (the first iteration exceeds the
// default benchtime). Micro-benchmarks for the substrate primitives
// follow.

import (
	"io"
	"testing"

	"github.com/interweaving/komp/internal/bench"
	"github.com/interweaving/komp/internal/core"
	"github.com/interweaving/komp/internal/exec"
	"github.com/interweaving/komp/internal/machine"
	"github.com/interweaving/komp/internal/memsim"
	"github.com/interweaving/komp/internal/nas"
	"github.com/interweaving/komp/internal/omp"
	"github.com/interweaving/komp/internal/sim"
	"github.com/interweaving/komp/internal/virgil"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	f, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	for i := 0; i < b.N; i++ {
		if err := f.Run(io.Discard, bench.Options{Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Table regenerates the Figure 6 design-tradeoff table.
func BenchmarkFig6Table(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7EPCCRTKPhi regenerates Figure 7 (EPCC, RTK vs Linux, PHI).
func BenchmarkFig7EPCCRTKPhi(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8EPCCPIKPhi regenerates Figure 8 (EPCC, PIK vs Linux, PHI).
func BenchmarkFig8EPCCPIKPhi(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig9NASRTKPhi regenerates Figure 9 (NAS, RTK vs Linux, PHI).
func BenchmarkFig9NASRTKPhi(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkFig10NASPIKPhi regenerates Figure 10 (NAS, PIK vs Linux, PHI).
func BenchmarkFig10NASPIKPhi(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkFig11CCKAbsolutePhi regenerates Figure 11 (CCK absolute, PHI).
func BenchmarkFig11CCKAbsolutePhi(b *testing.B) { benchFigure(b, "fig11") }

// BenchmarkFig12CCKRelativePhi regenerates Figure 12 (CCK relative, PHI).
func BenchmarkFig12CCKRelativePhi(b *testing.B) { benchFigure(b, "fig12") }

// BenchmarkFig13EPCC8Xeon regenerates Figure 13 (EPCC, 192 cores 8XEON).
func BenchmarkFig13EPCC8Xeon(b *testing.B) { benchFigure(b, "fig13") }

// BenchmarkFig14NAS8Xeon regenerates Figure 14 (NAS, RTK+PIK, 8XEON).
func BenchmarkFig14NAS8Xeon(b *testing.B) { benchFigure(b, "fig14") }

// BenchmarkFig15CCK8Xeon regenerates Figure 15 (CCK relative, 8XEON).
func BenchmarkFig15CCK8Xeon(b *testing.B) { benchFigure(b, "fig15") }

// --- Substrate micro-benchmarks (host performance of the simulator) ---

// BenchmarkBuddyAllocFree measures the kernel buddy allocator.
func BenchmarkBuddyAllocFree(b *testing.B) {
	buddy, err := memsim.NewBuddy(1 << 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, ok := buddy.Alloc(8192)
		if !ok {
			b.Fatal("alloc failed")
		}
		if err := buddy.Free(off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEventThroughput measures raw DES event processing.
func BenchmarkSimEventThroughput(b *testing.B) {
	s := sim.New(4, 1)
	n := b.N
	s.Go("p", 0, 0, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Compute(10)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOMPBarrierSim measures the simulated team barrier at 16
// threads (events per barrier round).
func BenchmarkOMPBarrierSim(b *testing.B) {
	env := core.New(core.Config{Machine: machine.PHI(), Kind: core.RTK, Seed: 1, Threads: 16})
	rt := env.OMPRuntime()
	n := b.N
	b.ResetTimer()
	_, err := env.Layer.Run(func(tc exec.TC) {
		rt.Parallel(tc, 16, func(w *omp.Worker) {
			for i := 0; i < n; i++ {
				w.Barrier()
			}
		})
		rt.Close(tc)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOMPParallelForReal measures a real-goroutine worksharing loop.
func BenchmarkOMPParallelForReal(b *testing.B) {
	o := New(4)
	defer o.Close()
	data := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.ParallelFor(0, 0, len(data), ForOpt{Sched: Static}, func(j int) {
			data[j] += 1
		})
	}
}

// BenchmarkVirgilSubmitSim measures kernel-VIRGIL task round-trips.
func BenchmarkVirgilSubmitSim(b *testing.B) {
	env := core.New(core.Config{Machine: machine.PHI(), Kind: core.CCK, Seed: 1, Threads: 8})
	v := env.Virgil()
	n := b.N
	b.ResetTimer()
	_, err := env.Layer.Run(func(tc exec.TC) {
		v.Start(tc)
		g := virgil.NewGroup(n)
		fns := make([]func(exec.TC), n)
		for i := range fns {
			fns[i] = func(wtc exec.TC) { wtc.Charge(100); g.Done(wtc) }
		}
		v.SubmitBatch(tc, fns)
		g.Wait(tc)
		v.Stop(tc)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNASModelRun measures one full NAS model run (EP on RTK at 64
// simulated CPUs) — the unit of work behind Figures 9-15.
func BenchmarkNASModelRun(b *testing.B) {
	s := nas.SpecByName("EP")
	for i := 0; i < b.N; i++ {
		env := core.New(core.Config{Machine: machine.PHI(), Kind: core.RTK, Seed: 1, Threads: 64})
		if _, err := nas.RunModel(env, s, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEPRealKernel measures the real EP kernel per Gaussian pair.
func BenchmarkEPRealKernel(b *testing.B) {
	layer := exec.NewRealLayer(4)
	rt := omp.New(layer, omp.Options{MaxThreads: 4, Bind: true})
	b.ResetTimer()
	_, err := layer.Run(func(tc exec.TC) {
		for i := 0; i < b.N; i++ {
			nas.EP(tc, rt, 14, 4)
		}
		rt.Close(tc)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 14)
}
